//! v1 wire encodings for the baseline protocol messages.
//!
//! Layouts (header and conventions in `eesmr_net::codec`; nested
//! `Block`/`Commands`/`QuorumCert`/`CertifiedBlock` encodings come from
//! `eesmr_core::codec`):
//!
//! ```text
//! HsMsg = header(HS_MSG) | kind u8 | view u64 | signer u32
//!       | payload body (per kind) | Signature
//! TbMsg = header(TB_MSG) | tag u8 | signer u32
//!       | payload body (per tag) | Signature
//! ```
//!
//! The blame equivocation proof embeds the two conflicting `HsMsg`s as
//! full frames, exactly like `SignedMsg` blames.

use eesmr_core::{Block, CertifiedBlock, Commands, MsgKind, QuorumCert};
use eesmr_crypto::{Digest, Signature};
use eesmr_net::codec::{
    family, put_count, put_header, read_count, read_header, CodecError, Reader, WireCodec,
    HEADER_LEN,
};

use crate::sync_hotstuff::{HsMsg, HsPayload};
use crate::trusted::{TbMsg, TbPayload};

fn read_msg_kind(r: &mut Reader<'_>) -> Result<MsgKind, CodecError> {
    let tag = r.u8()?;
    MsgKind::from_wire(tag).ok_or(CodecError::UnknownTag { what: "message kind", tag })
}

fn put_blocks(out: &mut Vec<u8>, blocks: &[Block]) {
    put_count(out, blocks.len());
    for b in blocks {
        b.encode_into(out);
    }
}

fn read_blocks(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<Block>, CodecError> {
    let count = read_count(r, 32 + 24 + 4, what)?;
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(Block::decode_from(r)?);
    }
    Ok(v)
}

fn blocks_len(blocks: &[Block]) -> usize {
    4 + blocks.iter().map(Block::encoded_len).sum::<usize>()
}

impl HsPayload {
    pub(crate) fn body_encoded_len(&self) -> usize {
        match self {
            HsPayload::Propose { block, justify } => {
                block.encoded_len() + 1 + justify.as_ref().map_or(0, QuorumCert::encoded_len)
            }
            HsPayload::Vote { .. } => 32 + 8,
            HsPayload::Blame { proof } => {
                1 + proof.as_ref().map_or(0, |p| p.0.encoded_len() + p.1.encoded_len())
            }
            HsPayload::BlameQc(qc) => qc.encoded_len(),
            HsPayload::Status { cert } => 1 + cert.as_ref().map_or(0, CertifiedBlock::encoded_len),
            HsPayload::SyncRequest { .. } => 32,
            HsPayload::SyncResponse { blocks } => blocks_len(blocks),
            HsPayload::Forward { commands } => commands.encoded_len(),
            HsPayload::Repair { .. } => 8,
            HsPayload::RepairReply { blocks, .. } => blocks_len(blocks) + 8,
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            HsPayload::Propose { block, justify } => {
                block.encode_into(out);
                match justify {
                    None => out.push(0),
                    Some(qc) => {
                        out.push(1);
                        qc.encode_into(out);
                    }
                }
            }
            HsPayload::Vote { block_id, height } => {
                block_id.encode_into(out);
                out.extend_from_slice(&height.to_le_bytes());
            }
            HsPayload::Blame { proof } => match proof {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    p.0.encode_into(out);
                    p.1.encode_into(out);
                }
            },
            HsPayload::BlameQc(qc) => qc.encode_into(out),
            HsPayload::Status { cert } => match cert {
                None => out.push(0),
                Some(c) => {
                    out.push(1);
                    c.encode_into(out);
                }
            },
            HsPayload::SyncRequest { want } => want.encode_into(out),
            HsPayload::SyncResponse { blocks } => put_blocks(out, blocks),
            HsPayload::Forward { commands } => commands.encode_into(out),
            HsPayload::Repair { from_height } => out.extend_from_slice(&from_height.to_le_bytes()),
            HsPayload::RepairReply { blocks, view } => {
                put_blocks(out, blocks);
                out.extend_from_slice(&view.to_le_bytes());
            }
        }
    }

    fn decode_body(kind: MsgKind, r: &mut Reader<'_>) -> Result<HsPayload, CodecError> {
        Ok(match kind {
            MsgKind::Propose => {
                let block = Block::decode_from(r)?;
                let justify = match r.u8()? {
                    0 => None,
                    1 => Some(QuorumCert::decode_from(r)?),
                    tag => return Err(CodecError::UnknownTag { what: "option flag", tag }),
                };
                HsPayload::Propose { block, justify }
            }
            MsgKind::HsVote => {
                HsPayload::Vote { block_id: Digest::decode_from(r)?, height: r.u64()? }
            }
            MsgKind::Blame => {
                let proof = match r.u8()? {
                    0 => None,
                    1 => {
                        let a = HsMsg::decode_from(r)?;
                        let b = HsMsg::decode_from(r)?;
                        Some(Box::new((a, b)))
                    }
                    tag => return Err(CodecError::UnknownTag { what: "option flag", tag }),
                };
                HsPayload::Blame { proof }
            }
            MsgKind::BlameQc => HsPayload::BlameQc(QuorumCert::decode_from(r)?),
            MsgKind::LockStatus => {
                let cert = match r.u8()? {
                    0 => None,
                    1 => Some(CertifiedBlock::decode_from(r)?),
                    tag => return Err(CodecError::UnknownTag { what: "option flag", tag }),
                };
                HsPayload::Status { cert }
            }
            MsgKind::SyncRequest => HsPayload::SyncRequest { want: Digest::decode_from(r)? },
            MsgKind::SyncResponse => {
                HsPayload::SyncResponse { blocks: read_blocks(r, "sync-response blocks")? }
            }
            MsgKind::Forward => HsPayload::Forward { commands: Commands::decode_from(r)? },
            MsgKind::Repair => HsPayload::Repair { from_height: r.u64()? },
            MsgKind::RepairReply => HsPayload::RepairReply {
                blocks: read_blocks(r, "repair-reply blocks")?,
                view: r.u64()?,
            },
            other => {
                return Err(CodecError::UnknownTag { what: "sync-hotstuff kind", tag: other as u8 })
            }
        })
    }
}

impl WireCodec for HsMsg {
    fn encoded_len(&self) -> usize {
        HEADER_LEN + 1 + 8 + 4 + self.payload.body_encoded_len() + self.sig.encoded_len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_header(out, family::HS_MSG);
        out.push(self.payload.kind() as u8);
        out.extend_from_slice(&self.view.to_le_bytes());
        out.extend_from_slice(&self.signer.to_le_bytes());
        self.payload.encode_body(out);
        self.sig.encode_into(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        read_header(r, family::HS_MSG)?;
        let kind = read_msg_kind(r)?;
        let view = r.u64()?;
        let signer = r.u32()?;
        let payload = HsPayload::decode_body(kind, r)?;
        let sig = Signature::decode_from(r)?;
        Ok(HsMsg { payload, view, signer, sig })
    }
}

/// Variant tags of [`TbPayload`] (no `MsgKind` analogue exists for the
/// trusted baseline, so it has its own namespace).
const TB_REQUEST: u8 = 1;
const TB_ORDERED: u8 = 2;
const TB_REPAIR: u8 = 3;
const TB_REPAIR_REPLY: u8 = 4;

impl TbPayload {
    pub(crate) fn body_encoded_len(&self) -> usize {
        match self {
            TbPayload::Request { batch, .. } => batch.encoded_len() + 8,
            TbPayload::Ordered { block } => block.encoded_len(),
            TbPayload::Repair { .. } => 8,
            TbPayload::RepairReply { blocks } => blocks_len(blocks),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            TbPayload::Request { .. } => TB_REQUEST,
            TbPayload::Ordered { .. } => TB_ORDERED,
            TbPayload::Repair { .. } => TB_REPAIR,
            TbPayload::RepairReply { .. } => TB_REPAIR_REPLY,
        }
    }
}

impl WireCodec for TbMsg {
    fn encoded_len(&self) -> usize {
        HEADER_LEN + 1 + 4 + self.payload.body_encoded_len() + self.sig.encoded_len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_header(out, family::TB_MSG);
        out.push(self.payload.tag());
        out.extend_from_slice(&self.signer.to_le_bytes());
        match &self.payload {
            TbPayload::Request { batch, seq } => {
                batch.encode_into(out);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            TbPayload::Ordered { block } => block.encode_into(out),
            TbPayload::Repair { from_height } => out.extend_from_slice(&from_height.to_le_bytes()),
            TbPayload::RepairReply { blocks } => put_blocks(out, blocks),
        }
        self.sig.encode_into(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        read_header(r, family::TB_MSG)?;
        let tag = r.u8()?;
        let signer = r.u32()?;
        let payload = match tag {
            TB_REQUEST => TbPayload::Request { batch: Commands::decode_from(r)?, seq: r.u64()? },
            TB_ORDERED => TbPayload::Ordered { block: Block::decode_from(r)? },
            TB_REPAIR => TbPayload::Repair { from_height: r.u64()? },
            TB_REPAIR_REPLY => {
                TbPayload::RepairReply { blocks: read_blocks(r, "tb repair blocks")? }
            }
            tag => return Err(CodecError::UnknownTag { what: "trusted-baseline tag", tag }),
        };
        let sig = Signature::decode_from(r)?;
        Ok(TbMsg { payload, signer, sig })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_core::message::signing_bytes;
    use eesmr_core::Command;
    use eesmr_crypto::{KeyStore, SigScheme};

    fn pki() -> KeyStore {
        KeyStore::generate(4, SigScheme::Rsa1024, 99)
    }

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode();
        assert_eq!(bytes.len(), v.encoded_len());
        let back = T::decode(&bytes).expect("decodes");
        assert_eq!(&back, v);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn every_hs_payload_kind_round_trips() {
        let pki = pki();
        let kp = pki.keypair(0);
        let g = Block::genesis();
        let b1 = Block::extending(&g, 1, 1, vec![Command::synthetic(1, 16)]);
        let bytes = signing_bytes(MsgKind::HsVote, 1, &b1.id());
        let sigs: Vec<_> = (0..2u32).map(|i| (i, pki.keypair(i).sign(&bytes))).collect();
        let qc = QuorumCert { kind: MsgKind::HsVote, view: 1, data: b1.id(), height: 1, sigs };
        let cert = CertifiedBlock { qc: qc.clone(), block: b1.clone() };
        let sig = kp.sign(b"m");
        let mk = |payload| HsMsg { payload, view: 2, signer: 0, sig: sig.clone() };
        let p1 = mk(HsPayload::Propose { block: b1.clone(), justify: None });
        let p2 = mk(HsPayload::Propose { block: g.clone(), justify: Some(qc.clone()) });
        let payloads = vec![
            HsPayload::Propose { block: b1.clone(), justify: Some(qc.clone()) },
            HsPayload::Propose { block: b1.clone(), justify: None },
            HsPayload::Vote { block_id: b1.id(), height: 1 },
            HsPayload::Blame { proof: None },
            HsPayload::Blame { proof: Some(Box::new((p1, p2))) },
            HsPayload::BlameQc(qc),
            HsPayload::Status { cert: Some(cert) },
            HsPayload::Status { cert: None },
            HsPayload::SyncRequest { want: b1.id() },
            HsPayload::SyncResponse { blocks: vec![g.clone(), b1.clone()] },
            HsPayload::Forward { commands: Commands::from(vec![Command::synthetic(3, 12)]) },
            HsPayload::Repair { from_height: 2 },
            HsPayload::RepairReply { blocks: vec![b1.clone()], view: 3 },
        ];
        for payload in payloads {
            roundtrip(&mk(payload));
        }
    }

    #[test]
    fn every_tb_payload_tag_round_trips() {
        let pki = pki();
        let g = Block::genesis();
        let b1 = Block::extending(&g, 0, 0, vec![Command::synthetic(1, 16)]);
        let sig = pki.keypair(1).sign(b"m");
        let payloads = vec![
            TbPayload::Request { batch: Commands::from(vec![Command::synthetic(0, 8)]), seq: 4 },
            TbPayload::Ordered { block: b1.clone() },
            TbPayload::Repair { from_height: 1 },
            TbPayload::RepairReply { blocks: vec![b1] },
        ];
        for payload in payloads {
            roundtrip(&TbMsg { payload, signer: 1, sig: sig.clone() });
        }
    }

    #[test]
    fn cross_family_decode_is_rejected() {
        let pki = pki();
        let sig = pki.keypair(0).sign(b"m");
        let hs = HsMsg { payload: HsPayload::Repair { from_height: 0 }, view: 1, signer: 0, sig };
        let bytes = hs.encode();
        assert!(matches!(
            TbMsg::decode(&bytes),
            Err(CodecError::UnknownTag { what: "message family", .. })
        ));
    }
}
