//! Live per-scenario progress events.
//!
//! Workers publish events onto an internal channel; a dedicated drainer
//! thread invokes the caller's callback, so status lines are serialized
//! (never interleaved) no matter how many workers run. Event *order*
//! follows completion and is therefore not deterministic — only the
//! [`SuiteReport`](crate::SuiteReport) is.

use std::time::Duration;

/// One progress event from the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A worker picked up a cell (one event per repeat).
    Started {
        /// Cell index in grid order.
        index: usize,
        /// Total number of cells in the grid.
        total: usize,
        /// Cell label.
        label: String,
        /// Which repeat of the cell this run is (0-based).
        repeat: usize,
    },
    /// A run finished.
    Finished {
        /// Cell index in grid order.
        index: usize,
        /// Total number of cells in the grid.
        total: usize,
        /// Cell label.
        label: String,
        /// Which repeat of the cell this run was (0-based).
        repeat: usize,
        /// The run's one-line summary ([`RunReport::summary`](eesmr_sim::RunReport::summary)).
        summary: String,
        /// Wall-clock time the run took.
        wall: Duration,
    },
}

impl ProgressEvent {
    /// A one-line status string, e.g.
    /// `[ 3/12] done EESMR n=6 k=3 … (0.41s): EESMR: n=6 …`.
    pub fn status_line(&self) -> String {
        match self {
            ProgressEvent::Started { index, total, label, repeat } => {
                let repeat =
                    if *repeat > 0 { format!(" (repeat {repeat})") } else { String::new() };
                format!("[{:>2}/{total}] run  {label}{repeat}", index + 1)
            }
            ProgressEvent::Finished { index, total, label, wall, .. } => {
                format!("[{:>2}/{total}] done {label} ({:.2}s)", index + 1, wall.as_secs_f64())
            }
        }
    }
}

/// A ready-made callback printing [`ProgressEvent::status_line`]s for
/// finished runs to stderr (stdout stays clean for the result tables).
pub fn stderr_status() -> impl Fn(ProgressEvent) + Sync + Send {
    |event| {
        if matches!(event, ProgressEvent::Finished { .. }) {
            eprintln!("{}", event.status_line());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_lines_are_informative() {
        let start = ProgressEvent::Started { index: 2, total: 12, label: "cell".into(), repeat: 0 };
        assert_eq!(start.status_line(), "[ 3/12] run  cell");
        let rep = ProgressEvent::Started { index: 2, total: 12, label: "cell".into(), repeat: 1 };
        assert!(rep.status_line().contains("repeat 1"));
        let done = ProgressEvent::Finished {
            index: 11,
            total: 12,
            label: "cell".into(),
            repeat: 0,
            summary: String::new(),
            wall: Duration::from_millis(500),
        };
        assert_eq!(done.status_line(), "[12/12] done cell (0.50s)");
    }
}
