//! [`ScenarioGrid`]: declarative sweeps over the paper's experiment axes.
//!
//! A grid is the cartesian product of the axes every figure in the
//! paper's evaluation varies — protocol, system size `n`, k-cast degree,
//! payload, batch policy, signature scheme, seed — plus any explicitly
//! built scenarios appended after the cartesian cells. Building a grid
//! is pure (no scenarios run until a
//! [`Driver`](crate::Driver) executes it), so construction is cheap to
//! test:
//!
//! ```
//! use eesmr_driver::ScenarioGrid;
//! use eesmr_sim::{BatchPolicy, Protocol, StopWhen};
//!
//! let grid = ScenarioGrid::named("policies")
//!     .nodes([6])
//!     .degrees([3])
//!     .batch_policies([
//!         BatchPolicy::Fixed(64),
//!         BatchPolicy::Adaptive { min: 4, max: 256, target_fill_pct: 80 },
//!     ])
//!     .stop(StopWhen::Blocks(5));
//! assert_eq!(grid.len(), 2);
//! let cells = grid.build();
//! assert!(cells[1].label.contains("batch=adaptive4..256@80%"), "{}", cells[1].label);
//! ```

use eesmr_crypto::SigScheme;
use eesmr_net::SimDuration;
use eesmr_sim::{BatchPolicy, FaultSpec, Protocol, Scenario, StopWhen, Workload};

/// One runnable cell of a grid: its position, display label, and the
/// fully-configured scenario.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Position in the grid's deterministic ordering (cartesian cells
    /// first, explicit scenarios after, both in declaration order).
    pub index: usize,
    /// Display label (defaults to [`Scenario::label`]).
    pub label: String,
    /// The scenario to run.
    pub scenario: Scenario,
}

/// A declarative sweep: the cartesian product of protocol × n × k ×
/// payload × batch-policy × workload × shard-count × fault × scheme ×
/// seed axes, plus any explicitly-listed scenarios.
///
/// Axis defaults match [`Scenario::new`]: protocol `[Eesmr]`, payload
/// `[16]` bytes, batch policy `[Fixed(64)]`, scheme `[Rsa1024]`, seed
/// `[42]` — so a grid that only
/// sets `nodes` and `degrees` sweeps exactly what the hand-rolled figure
/// loops used to. Cells whose ring degree is invalid (`k < 1` or
/// `k ≥ n`) are skipped, mirroring the `if k >= n { continue }` guards
/// the per-figure loops needed.
///
/// ```
/// use eesmr_driver::ScenarioGrid;
/// use eesmr_sim::{Protocol, StopWhen};
///
/// let grid = ScenarioGrid::named("example")
///     .protocols([Protocol::Eesmr, Protocol::SyncHotStuff])
///     .nodes(4..=6)
///     .degrees([3])
///     .stop(StopWhen::Blocks(5));
/// // k=3 is a valid ring degree for every n here, so all 2×3 cells survive:
/// assert_eq!(grid.len(), 6);
/// assert!(grid.build()[0].label.contains("EESMR n=4"));
/// ```
#[derive(Default)]
pub struct ScenarioGrid {
    name: String,
    protocols: Vec<Protocol>,
    ns: Vec<usize>,
    ks: Vec<usize>,
    payloads: Vec<usize>,
    batch_policies: Vec<BatchPolicy>,
    workloads: Vec<Workload>,
    shards: Vec<usize>,
    faults: Vec<FaultSpec>,
    schemes: Vec<SigScheme>,
    seeds: Vec<u64>,
    stop: Option<StopWhen>,
    #[allow(clippy::type_complexity)]
    configure: Option<Box<dyn Fn(Scenario) -> Scenario + Send + Sync>>,
    explicit: Vec<(String, Scenario)>,
}

impl std::fmt::Debug for ScenarioGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioGrid")
            .field("name", &self.name)
            .field("protocols", &self.protocols)
            .field("ns", &self.ns)
            .field("ks", &self.ks)
            .field("payloads", &self.payloads)
            .field("batch_policies", &self.batch_policies)
            .field("workloads", &self.workloads)
            .field("shards", &self.shards)
            .field("faults", &self.faults)
            .field("schemes", &self.schemes)
            .field("seeds", &self.seeds)
            .field("stop", &self.stop)
            .field("explicit", &self.explicit.len())
            .finish()
    }
}

impl ScenarioGrid {
    /// An empty grid with the given suite name (used for sink file names
    /// and progress lines).
    pub fn named(name: impl Into<String>) -> Self {
        ScenarioGrid {
            name: name.into(),
            protocols: vec![Protocol::Eesmr],
            payloads: vec![16],
            schemes: vec![SigScheme::Rsa1024],
            seeds: vec![42],
            ..Default::default()
        }
    }

    /// The suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the protocol axis.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = Protocol>) -> Self {
        self.protocols = protocols.into_iter().collect();
        self
    }

    /// Sets the node-count axis.
    pub fn nodes(mut self, ns: impl IntoIterator<Item = usize>) -> Self {
        self.ns = ns.into_iter().collect();
        self
    }

    /// Sets the ring k-cast degree axis.
    pub fn degrees(mut self, ks: impl IntoIterator<Item = usize>) -> Self {
        self.ks = ks.into_iter().collect();
        self
    }

    /// Sets the payload-bytes axis.
    pub fn payloads(mut self, payloads: impl IntoIterator<Item = usize>) -> Self {
        self.payloads = payloads.into_iter().collect();
        self
    }

    /// Sets the batch-policy axis. When unset, every cell keeps its
    /// protocol's default policy (and its label stays unchanged).
    pub fn batch_policies(mut self, policies: impl IntoIterator<Item = BatchPolicy>) -> Self {
        self.batch_policies = policies.into_iter().collect();
        self
    }

    /// Sets the client-workload axis (arrival process × skew × payload ×
    /// injection; see `eesmr-workload`). When unset, every cell keeps the
    /// synthetic `offered_load` feed.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the simulation shard-count axis (`Scenario::shards`; see
    /// `eesmr_net::shard`). A *performance* axis: cells differing only
    /// in shard count produce bit-identical reports, so sweeping it
    /// measures intra-scenario parallel speed, not results. When unset,
    /// every cell keeps the `EESMR_SHARDS` default (and its label stays
    /// unchanged).
    pub fn shards(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.shards = shards.into_iter().collect();
        self
    }

    /// Sets the fault axis: each cell runs under the canonical
    /// [`FaultSpec`] plan sized to its `(n, Δ)` (see `eesmr_sim::faults`).
    /// When unset, every cell runs honest (and its label stays
    /// unchanged).
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Sets the signature-scheme axis.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SigScheme>) -> Self {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Sets the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the stop condition applied to every cartesian cell.
    pub fn stop(mut self, stop: StopWhen) -> Self {
        self.stop = Some(stop);
        self
    }

    /// A per-cell hook applied after the axis values, for settings the
    /// axes don't cover (fault plans, streaming pacing, optimizations…).
    pub fn configure(mut self, f: impl Fn(Scenario) -> Scenario + Send + Sync + 'static) -> Self {
        self.configure = Some(Box::new(f));
        self
    }

    /// Appends one explicitly-built scenario (after all cartesian cells)
    /// under the given label. Explicit scenarios bypass the axes, the
    /// stop condition, and the `configure` hook.
    pub fn scenario(mut self, label: impl Into<String>, scenario: Scenario) -> Self {
        self.explicit.push((label.into(), scenario));
        self
    }

    /// Number of runnable cells (invalid-degree cells excluded).
    pub fn len(&self) -> usize {
        self.cartesian_len() + self.explicit.len()
    }

    /// Whether the grid has no runnable cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cartesian_len(&self) -> usize {
        let valid_nk = self
            .ns
            .iter()
            .map(|&n| self.ks.iter().filter(|&&k| k >= 1 && k < n).count())
            .sum::<usize>();
        valid_nk
            * self.protocols.len()
            * self.payloads.len()
            * self.batch_policies.len().max(1)
            * self.workloads.len().max(1)
            * self.shards.len().max(1)
            * self.faults.len().max(1)
            * self.schemes.len()
            * self.seeds.len()
    }

    /// Materializes the grid into its deterministic cell ordering:
    /// protocol-major cartesian cells (n, then k, then payload, batch
    /// policy, workload, shard count, fault, scheme, seed innermost),
    /// then the explicit scenarios in push order.
    pub fn build(&self) -> Vec<GridCell> {
        // An unset batch axis means "each protocol's default policy",
        // without marking the policy as explicitly chosen; an unset
        // workload axis keeps the synthetic feed; an unset shards axis
        // keeps the EESMR_SHARDS default; an unset fault axis keeps
        // every node honest.
        let batches: Vec<Option<BatchPolicy>> = if self.batch_policies.is_empty() {
            vec![None]
        } else {
            self.batch_policies.iter().copied().map(Some).collect()
        };
        let workloads: Vec<Option<Workload>> = if self.workloads.is_empty() {
            vec![None]
        } else {
            self.workloads.iter().copied().map(Some).collect()
        };
        let shards: Vec<Option<usize>> = if self.shards.is_empty() {
            vec![None]
        } else {
            self.shards.iter().copied().map(Some).collect()
        };
        let faults: Vec<Option<FaultSpec>> = if self.faults.is_empty() {
            vec![None]
        } else {
            self.faults.iter().copied().map(Some).collect()
        };
        let mut cells = Vec::with_capacity(self.len());
        for &protocol in &self.protocols {
            for &n in &self.ns {
                for &k in &self.ks {
                    if k < 1 || k >= n {
                        continue;
                    }
                    for &payload in &self.payloads {
                        for &batch in &batches {
                            for &workload in &workloads {
                                for &shard_count in &shards {
                                    for &fault in &faults {
                                        for &scheme in &self.schemes {
                                            for &seed in &self.seeds {
                                                let mut s = Scenario::new(protocol, n, k)
                                                    .payload(payload)
                                                    .scheme(scheme)
                                                    .seed(seed);
                                                if let Some(policy) = batch {
                                                    s = s.batch_policy(policy);
                                                }
                                                if let Some(w) = workload {
                                                    s = s.workload(w);
                                                }
                                                if let Some(count) = shard_count {
                                                    s = s.shards(count);
                                                }
                                                if let Some(spec) = fault {
                                                    s = s.fault_spec(spec);
                                                }
                                                if let Some(stop) = self.stop {
                                                    s = s.stop(stop);
                                                }
                                                if let Some(hook) = &self.configure {
                                                    s = hook(s);
                                                }
                                                cells.push(GridCell {
                                                    index: cells.len(),
                                                    label: s.label(),
                                                    scenario: s,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        for (label, scenario) in &self.explicit {
            cells.push(GridCell {
                index: cells.len(),
                label: label.clone(),
                scenario: scenario.clone(),
            });
        }
        cells
    }
}

/// Shrinks a scenario to smoke-test size for quick mode: block targets
/// clamp to 3, view targets to 2, elapsed spans to 25 virtual ms.
pub(crate) fn quicken(scenario: &Scenario) -> Scenario {
    let mut quick = scenario.clone();
    quick.stop = match scenario.stop {
        StopWhen::Blocks(b) => StopWhen::Blocks(b.min(3)),
        StopWhen::ViewReached(v) => StopWhen::ViewReached(v.min(2)),
        StopWhen::Elapsed(d) => StopWhen::Elapsed(d.min(SimDuration::from_millis(25))),
    };
    quick
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_sim::FaultPlan;

    #[test]
    fn cartesian_product_covers_all_axes() {
        let grid = ScenarioGrid::named("t")
            .protocols([Protocol::Eesmr, Protocol::OptSync])
            .nodes([5, 6])
            .degrees([2, 3])
            .payloads([16, 64])
            .seeds([1, 2, 3])
            .stop(StopWhen::Blocks(4));
        assert_eq!(grid.len(), 2 * 2 * 2 * 2 * 3);
        let cells = grid.build();
        assert_eq!(cells.len(), grid.len());
        // Indices are dense and ordered.
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.scenario.stop, StopWhen::Blocks(4));
        }
        // Protocol is the outermost axis.
        assert_eq!(cells[0].scenario.protocol, Protocol::Eesmr);
        assert_eq!(cells.last().unwrap().scenario.protocol, Protocol::OptSync);
    }

    #[test]
    fn shards_axis_multiplies_cells_and_sets_the_knob() {
        let grid = ScenarioGrid::named("t")
            .nodes([6])
            .degrees([2])
            .shards([1, 2, 4])
            .stop(StopWhen::Blocks(2));
        assert_eq!(grid.len(), 3);
        let cells = grid.build();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].scenario.shards, 1);
        assert_eq!(cells[2].scenario.shards, 4);
        assert!(cells[2].label.contains("shards=4"), "{}", cells[2].label);
        // An unset axis leaves the scenario's env-derived default alone.
        let plain = ScenarioGrid::named("t").nodes([6]).degrees([2]).stop(StopWhen::Blocks(2));
        assert_eq!(plain.len(), 1);
    }

    #[test]
    fn fault_axis_multiplies_cells_and_sets_the_spec() {
        let grid = ScenarioGrid::named("t")
            .nodes([6])
            .degrees([2])
            .faults([FaultSpec::None, FaultSpec::Withhold, FaultSpec::CrashRecovery])
            .stop(StopWhen::Blocks(2));
        assert_eq!(grid.len(), 3);
        let cells = grid.build();
        assert_eq!(cells[0].scenario.fault_spec, Some(FaultSpec::None));
        assert_eq!(cells[1].scenario.fault_spec, Some(FaultSpec::Withhold));
        assert!(cells[1].label.contains("fault=withhold"), "{}", cells[1].label);
        assert_eq!(cells[2].scenario.cell().fault, FaultSpec::CrashRecovery);
        // An unset axis leaves every cell honest and unlabeled.
        let plain = ScenarioGrid::named("t").nodes([6]).degrees([2]).stop(StopWhen::Blocks(2));
        assert_eq!(plain.build()[0].scenario.fault_spec, None);
    }

    #[test]
    fn invalid_degrees_are_skipped() {
        let grid = ScenarioGrid::named("t").nodes([4, 6]).degrees([3, 5]).stop(StopWhen::Blocks(1));
        // n=4: only k=3 valid; n=6: both valid.
        assert_eq!(grid.len(), 3);
        assert_eq!(grid.build().len(), 3);
    }

    #[test]
    fn explicit_scenarios_follow_the_cartesian_cells() {
        let grid =
            ScenarioGrid::named("t").nodes([5]).degrees([2]).stop(StopWhen::Blocks(2)).scenario(
                "vc",
                Scenario::new(Protocol::Eesmr, 5, 2)
                    .faults(FaultPlan::silent_leader())
                    .stop(StopWhen::ViewReached(2)),
            );
        let cells = grid.build();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].label, "vc");
        assert_eq!(cells[1].index, 1);
    }

    #[test]
    fn configure_hook_applies_to_every_cartesian_cell() {
        let grid = ScenarioGrid::named("t")
            .nodes([6])
            .degrees([2])
            .stop(StopWhen::Blocks(2))
            .configure(|s| s.fault_bound(1).streaming());
        let cells = grid.build();
        assert_eq!(cells[0].scenario.fault_bound, Some(1));
        assert!(cells[0].scenario.streaming);
    }

    #[test]
    fn quicken_clamps_stop_conditions() {
        let s = Scenario::new(Protocol::Eesmr, 5, 2).stop(StopWhen::Blocks(50));
        assert_eq!(quicken(&s).stop, StopWhen::Blocks(3));
        let s = s.stop(StopWhen::Blocks(2));
        assert_eq!(quicken(&s).stop, StopWhen::Blocks(2), "already-small targets keep their size");
        let s = s.stop(StopWhen::ViewReached(9));
        assert_eq!(quicken(&s).stop, StopWhen::ViewReached(2));
        let s = s.stop(StopWhen::Elapsed(SimDuration::from_millis(500)));
        assert_eq!(quicken(&s).stop, StopWhen::Elapsed(SimDuration::from_millis(25)));
    }
}
