//! Structured suite reports: per-cell results, summary statistics across
//! repeats, and JSON/CSV sinks.

use std::path::PathBuf;

use eesmr_sim::{CellKey, RunReport};

use crate::sink::{out_dir, Csv};

/// Mean/min/max of one metric across a cell's repeats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty slice of samples; `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in samples {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(Summary { mean: sum / samples.len() as f64, min, max })
    }
}

/// Summary statistics for one cell, across its repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Total correct-node energy per committed block, mJ.
    pub energy_per_block_mj: Summary,
    /// Total correct-node energy, mJ.
    pub total_correct_energy_mj: Summary,
    /// Mean commit latency in µs (`None` if no repeat measured one).
    pub commit_latency_us: Option<Summary>,
    /// Per-transaction end-to-end commit-latency p50, µs (`None` if no
    /// repeat measured workload transactions).
    pub tx_latency_p50_us: Option<Summary>,
    /// Per-transaction end-to-end commit-latency p99, µs.
    pub tx_latency_p99_us: Option<Summary>,
    /// View changes completed (max over correct nodes, per repeat).
    pub view_changes: Summary,
    /// Committed height (min over correct nodes, per repeat).
    pub committed_height: Summary,
    /// Peak pending-command backlog (max over correct nodes, per repeat).
    pub peak_backlog: Summary,
    /// Mean proposed-batch fill, percent of the policy max (`None` if no
    /// repeat proposed a batch).
    pub mean_batch_fill_pct: Option<Summary>,
    /// Forward-retry rescues (sum over correct nodes, per repeat).
    pub forward_retries: Summary,
    /// Trace events dropped at `Tracer` ring capacity (sum over nodes,
    /// per repeat; 0 when the suite ran untraced).
    pub trace_dropped: Summary,
    /// Correct-node energy per attribution class, mJ, in
    /// [`EnergyClass::ALL`](eesmr_energy::EnergyClass) order.
    pub energy_by_class_mj: [Summary; eesmr_energy::N_ENERGY_CLASS],
}

impl CellStats {
    /// Aggregates a cell's repeats (panics on an empty slice — the driver
    /// always runs at least one repeat per cell).
    pub fn from_runs(runs: &[RunReport]) -> CellStats {
        assert!(!runs.is_empty(), "a cell has at least one run");
        let collect = |f: &dyn Fn(&RunReport) -> f64| -> Vec<f64> { runs.iter().map(f).collect() };
        let latencies: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.mean_commit_latency().map(|d| d.as_micros() as f64))
            .collect();
        let tx_stats: Vec<_> = runs.iter().filter_map(|r| r.tx_latency_stats()).collect();
        let tx_p50: Vec<f64> = tx_stats.iter().map(|s| s.p50_us as f64).collect();
        let tx_p99: Vec<f64> = tx_stats.iter().map(|s| s.p99_us as f64).collect();
        let fills: Vec<f64> = runs.iter().filter_map(|r| r.mean_batch_fill_pct()).collect();
        let energy_by_class_mj =
            std::array::from_fn(|i| Summary::of(&collect(&|r| r.energy_by_class_mj()[i])).unwrap());
        CellStats {
            energy_per_block_mj: Summary::of(&collect(&|r| r.energy_per_block_mj())).unwrap(),
            total_correct_energy_mj: Summary::of(&collect(&|r| r.total_correct_energy_mj()))
                .unwrap(),
            commit_latency_us: Summary::of(&latencies),
            tx_latency_p50_us: Summary::of(&tx_p50),
            tx_latency_p99_us: Summary::of(&tx_p99),
            view_changes: Summary::of(&collect(&|r| r.view_changes() as f64)).unwrap(),
            committed_height: Summary::of(&collect(&|r| r.committed_height() as f64)).unwrap(),
            peak_backlog: Summary::of(&collect(&|r| r.peak_backlog() as f64)).unwrap(),
            mean_batch_fill_pct: Summary::of(&fills),
            forward_retries: Summary::of(&collect(&|r| r.forward_retries() as f64)).unwrap(),
            trace_dropped: Summary::of(&collect(&|r| r.trace_dropped_total() as f64)).unwrap(),
            energy_by_class_mj,
        }
    }
}

/// Everything one grid cell produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Cell label (defaults to the scenario's [`label`](eesmr_sim::Scenario::label)).
    pub label: String,
    /// The cell's sweep coordinates.
    pub key: CellKey,
    /// One report per repeat, in repeat order.
    pub runs: Vec<RunReport>,
    /// Summary statistics across the repeats.
    pub stats: CellStats,
}

impl CellResult {
    /// The first repeat's report (the one a `repeats = 1` suite is
    /// entirely described by).
    pub fn report(&self) -> &RunReport {
        &self.runs[0]
    }
}

/// The structured outcome of running a whole grid: per-cell results in
/// deterministic grid order, independent of worker scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Suite name (from the grid; used for sink file names).
    pub name: String,
    /// Per-cell results, in grid order.
    pub cells: Vec<CellResult>,
}

/// Where [`SuiteReport::write`] put the suite sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuitePaths {
    /// The per-cell summary CSV.
    pub csv: PathBuf,
    /// The structured JSON report.
    pub json: PathBuf,
}

impl SuiteReport {
    /// The first cell whose key satisfies `pred`. Keys are unique across
    /// a cartesian sweep but not necessarily across explicit scenarios
    /// (a [`CellKey`] omits fault plans and stop conditions) — look
    /// those up with [`by_label`](Self::by_label) instead.
    pub fn find(&self, pred: impl Fn(&CellKey) -> bool) -> Option<&CellResult> {
        self.cells.iter().find(|c| pred(&c.key))
    }

    /// The cell with the given label.
    pub fn by_label(&self, label: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.label == label)
    }

    /// First-repeat reports in grid order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.cells.iter().map(CellResult::report)
    }

    /// Writes both sinks (`<name>.suite.csv` and `<name>.suite.json`)
    /// under [`out_dir`].
    pub fn write(&self) -> SuitePaths {
        SuitePaths { csv: self.write_csv(), json: self.write_json() }
    }

    /// Writes the per-cell summary CSV (`<name>.suite.csv`) under
    /// [`out_dir`], sharing the [`Csv`] writer with the figure binaries.
    pub fn write_csv(&self) -> PathBuf {
        let mut header = vec![
            "label",
            "protocol",
            "n",
            "k",
            "payload_bytes",
            "batch_policy",
            "offered_load",
            "workload",
            "shards",
            "fault",
            "scheme",
            "seed",
            "repeats",
            "committed_height",
            "view_changes",
            "energy_per_block_mj_mean",
            "energy_per_block_mj_min",
            "energy_per_block_mj_max",
            "total_energy_mj_mean",
            "commit_latency_us_mean",
            "tx_latency_p50_us_mean",
            "tx_latency_p99_us_mean",
            "peak_backlog_mean",
            "mean_batch_fill_pct",
            "forward_retries_mean",
            "trace_dropped_mean",
        ];
        let class_headers: Vec<String> = eesmr_energy::EnergyClass::ALL
            .iter()
            .map(|c| format!("energy_{}_mj_mean", c.as_str()))
            .collect();
        header.extend(class_headers.iter().map(String::as_str));
        let mut csv = Csv::create(&format!("{}.suite", self.name), &header);
        for cell in &self.cells {
            let s = &cell.stats;
            let mut row: Vec<String> = vec![
                cell.label.clone(),
                cell.report().protocol.to_string(),
                cell.key.n.to_string(),
                cell.key.k.to_string(),
                cell.key.payload_bytes.to_string(),
                cell.key.batch.label(),
                cell.key.offered_load.to_string(),
                cell.key.workload.map_or_else(|| "none".into(), |w| w.label()),
                cell.key.shards.to_string(),
                cell.key.fault.label().to_string(),
                cell.key.scheme.name().to_string(),
                cell.key.seed.to_string(),
                cell.runs.len().to_string(),
                s.committed_height.mean.to_string(),
                s.view_changes.mean.to_string(),
                s.energy_per_block_mj.mean.to_string(),
                s.energy_per_block_mj.min.to_string(),
                s.energy_per_block_mj.max.to_string(),
                s.total_correct_energy_mj.mean.to_string(),
                s.commit_latency_us.map_or_else(String::new, |l| l.mean.to_string()),
                s.tx_latency_p50_us.map_or_else(String::new, |l| l.mean.to_string()),
                s.tx_latency_p99_us.map_or_else(String::new, |l| l.mean.to_string()),
                s.peak_backlog.mean.to_string(),
                s.mean_batch_fill_pct.map_or_else(String::new, |l| l.mean.to_string()),
                s.forward_retries.mean.to_string(),
                s.trace_dropped.mean.to_string(),
            ];
            row.extend(s.energy_by_class_mj.iter().map(|c| c.mean.to_string()));
            csv.row(&row);
        }
        csv.path().clone()
    }

    /// Writes the structured JSON report (`<name>.suite.json`) under
    /// [`out_dir`]. Hand-rolled serialization — the workspace has no
    /// serde.
    pub fn write_json(&self) -> PathBuf {
        let path = out_dir().join(format!("{}.suite.json", self.name));
        std::fs::write(&path, self.to_json()).expect("can write suite JSON");
        path
    }

    /// The suite as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.name)));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let s = &cell.stats;
            out.push_str("    {");
            out.push_str(&format!("\"label\": {}, ", json_string(&cell.label)));
            out.push_str(&format!("\"protocol\": {}, ", json_string(cell.report().protocol)));
            out.push_str(&format!(
                "\"n\": {}, \"k\": {}, \"f\": {}, \"payload_bytes\": {}, ",
                cell.key.n,
                cell.key.k,
                cell.report().f,
                cell.key.payload_bytes
            ));
            out.push_str(&format!(
                "\"batch_policy\": {}, \"offered_load\": {}, \"workload\": {}, \"shards\": {}, \"fault\": {}, \"scheme\": {}, \"seed\": {}, \"repeats\": {}, ",
                json_string(&cell.key.batch.label()),
                cell.key.offered_load,
                cell.key.workload.map_or_else(|| "null".into(), |w| json_string(&w.label())),
                cell.key.shards,
                json_string(cell.key.fault.label()),
                json_string(cell.key.scheme.name()),
                cell.key.seed,
                cell.runs.len()
            ));
            out.push_str(&format!(
                "\"committed_height\": {}, \"view_changes\": {}, ",
                json_f64(s.committed_height.mean),
                json_f64(s.view_changes.mean)
            ));
            out.push_str(&format!(
                "\"energy_per_block_mj\": {}, ",
                json_summary(&s.energy_per_block_mj)
            ));
            out.push_str(&format!(
                "\"total_correct_energy_mj\": {}, ",
                json_summary(&s.total_correct_energy_mj)
            ));
            out.push_str(&format!(
                "\"commit_latency_us\": {}, ",
                s.commit_latency_us.as_ref().map_or_else(|| "null".into(), json_summary)
            ));
            out.push_str(&format!(
                "\"tx_latency_p50_us\": {}, \"tx_latency_p99_us\": {}, ",
                s.tx_latency_p50_us.as_ref().map_or_else(|| "null".into(), json_summary),
                s.tx_latency_p99_us.as_ref().map_or_else(|| "null".into(), json_summary)
            ));
            out.push_str(&format!(
                "\"peak_backlog\": {}, \"mean_batch_fill_pct\": {}, \"forward_retries\": {}, \"trace_dropped\": {}, ",
                json_summary(&s.peak_backlog),
                s.mean_batch_fill_pct.as_ref().map_or_else(|| "null".into(), json_summary),
                json_summary(&s.forward_retries),
                json_summary(&s.trace_dropped)
            ));
            out.push_str("\"energy_by_class_mj\": {");
            for (ci, class) in eesmr_energy::EnergyClass::ALL.into_iter().enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "\"{}\": {}",
                    class.as_str(),
                    json_f64(s.energy_by_class_mj[ci].mean)
                ));
            }
            out.push('}');
            out.push_str(if i + 1 < self.cells.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_summary(s: &Summary) -> String {
    format!(
        "{{\"mean\": {}, \"min\": {}, \"max\": {}}}",
        json_f64(s.mean),
        json_f64(s.min),
        json_f64(s.max)
    )
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_samples() {
        assert_eq!(Summary::of(&[]), None);
        let s = Summary::of(&[2.0, 4.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
