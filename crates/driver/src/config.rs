//! Driver configuration: worker count, repeats, quick mode, and their
//! environment overrides.

use std::env;

/// Environment variable overriding [`DriverConfig::workers`].
pub const ENV_WORKERS: &str = "EESMR_WORKERS";
/// Environment variable enabling [`DriverConfig::quick_mode`] (`1`/`true`).
pub const ENV_QUICK: &str = "EESMR_QUICK";

/// Knobs for a [`Driver`](crate::Driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Worker threads to fan scenarios across. `1` means run inline on
    /// the calling thread. Never affects *results*: the driver restores
    /// grid order regardless of completion order.
    pub workers: usize,
    /// How many times to run each grid cell; repeat `r` reseeds the
    /// cell's scenario (repeat 0 keeps its own seed, later repeats
    /// stride into a disjoint seed range). Summary statistics aggregate
    /// across repeats. Forced to `1` in quick mode.
    pub repeats: usize,
    /// Shrink every scenario's stop condition to a smoke-test size (see
    /// [`crate::ScenarioGrid`] docs) — used by CI to exercise the
    /// parallel path cheaply.
    pub quick_mode: bool,
}

impl Default for DriverConfig {
    /// One worker per available core (at least 1), single repeat, full
    /// scenarios.
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        DriverConfig { workers, repeats: 1, quick_mode: false }
    }
}

impl DriverConfig {
    /// The defaults with `EESMR_WORKERS` / `EESMR_QUICK` applied on top.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(workers) = env::var(ENV_WORKERS).ok().and_then(|v| v.parse::<usize>().ok()) {
            config.workers = workers.max(1);
        }
        if let Ok(quick) = env::var(ENV_QUICK) {
            config.quick_mode = !matches!(quick.as_str(), "" | "0" | "false");
        }
        config
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-cell repeat count (clamped to at least 1).
    pub fn repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Enables or disables quick mode.
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick_mode = quick;
        self
    }

    /// Repeats actually run per cell (quick mode forces 1).
    pub fn effective_repeats(&self) -> usize {
        if self.quick_mode {
            1
        } else {
            self.repeats.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_to_one() {
        let c = DriverConfig::default().workers(0).repeats(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.repeats, 1);
        assert!(!c.quick_mode);
    }

    #[test]
    fn quick_mode_forces_single_repeat() {
        let c = DriverConfig::default().repeats(5);
        assert_eq!(c.effective_repeats(), 5);
        assert_eq!(c.quick(true).effective_repeats(), 1);
    }
}
