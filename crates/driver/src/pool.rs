//! The crossbeam-based worker pool behind [`Driver`].
//!
//! Scenarios fan out over a clonable MPMC channel (the work queue) to
//! `workers` scoped threads; results come back tagged with their grid
//! index and are re-sorted, so the suite is **bit-identical** no matter
//! how the OS schedules workers — `tests/determinism.rs` at the
//! workspace root enforces parallel ≡ sequential.
//!
//! Beyond scenario grids, [`Driver::map`] exposes the same ordered pool
//! for any embarrassingly parallel work:
//!
//! ```
//! use eesmr_driver::{Driver, DriverConfig};
//!
//! let driver = Driver::new(DriverConfig::default().workers(4));
//! let items: Vec<u64> = (0..32).collect();
//! let cubes = driver.map(&items, |&v| v * v * v);
//! assert_eq!(cubes[3], 27, "results come back in item order");
//! ```

use std::time::Instant;

use crossbeam::channel::unbounded;
use crossbeam::thread;

use eesmr_sim::RunReport;

use crate::config::DriverConfig;
use crate::grid::{quicken, GridCell, ScenarioGrid};
use crate::progress::ProgressEvent;
use crate::report::{CellResult, CellStats, SuiteReport};

/// Stride between the seeds of a cell's repeats (2^64 / φ, the odd
/// golden-ratio constant), so repeat seeds don't collide with adjacent
/// values on a grid's seed axis.
const REPEAT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Parallel experiment executor. Construct with a [`DriverConfig`] (or
/// [`Driver::from_env`] to honor `EESMR_WORKERS` / `EESMR_QUICK`), then
/// submit a [`ScenarioGrid`].
#[derive(Debug, Clone, Copy)]
pub struct Driver {
    config: DriverConfig,
}

impl Driver {
    /// A driver with the given configuration.
    pub fn new(config: DriverConfig) -> Self {
        Driver { config }
    }

    /// A driver configured from the environment
    /// ([`DriverConfig::from_env`]).
    pub fn from_env() -> Self {
        Driver::new(DriverConfig::from_env())
    }

    /// The active configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Runs every cell of the grid (`repeats` times each) across the
    /// worker pool and returns the suite in deterministic grid order.
    pub fn run_grid(&self, grid: &ScenarioGrid) -> SuiteReport {
        self.run_grid_with_progress(grid, |_| {})
    }

    /// [`run_grid`](Self::run_grid), publishing a [`ProgressEvent`] as
    /// each run starts and finishes. Events flow through an internal
    /// channel to a dedicated drainer thread, so `on_event` is invoked
    /// from one thread at a time (status lines never interleave).
    pub fn run_grid_with_progress<F>(&self, grid: &ScenarioGrid, on_event: F) -> SuiteReport
    where
        F: Fn(ProgressEvent) + Sync,
    {
        let cells = grid.build();
        let repeats = self.config.effective_repeats();
        let total = cells.len();

        // One task per (cell, repeat), cell-major so results regroup by
        // contiguous chunks of `repeats`.
        struct Task<'a> {
            cell: &'a GridCell,
            repeat: usize,
        }
        let tasks: Vec<Task> = cells
            .iter()
            .flat_map(|cell| (0..repeats).map(move |repeat| Task { cell, repeat }))
            .collect();

        let quick = self.config.quick_mode;
        // Workers publish onto the event channel; one drainer thread owns
        // the callback, so invocations are serialized.
        let reports: Vec<RunReport> = thread::scope(|scope| {
            let (event_tx, event_rx) = unbounded::<ProgressEvent>();
            let on_event = &on_event;
            let drainer = scope.spawn(move |_| {
                while let Ok(event) = event_rx.recv() {
                    on_event(event);
                }
            });
            let publish = &event_tx;
            let reports = self.run_ordered(&tasks, |task| {
                let _ = publish.send(ProgressEvent::Started {
                    index: task.cell.index,
                    total,
                    label: task.cell.label.clone(),
                    repeat: task.repeat,
                });
                let mut scenario =
                    if quick { quicken(&task.cell.scenario) } else { task.cell.scenario.clone() };
                // Repeat r re-runs the cell under a reseeded scenario so
                // repeats sample independent executions; repeat 0 keeps
                // the cell's own seed. The golden-ratio stride keeps
                // repeat seeds disjoint from neighbouring values on a
                // grid's seed axis (`seed + r` would make cell(seed=1)
                // repeat 1 replay cell(seed=2) repeat 0 exactly).
                scenario.seed = scenario
                    .seed
                    .wrapping_add((task.repeat as u64).wrapping_mul(REPEAT_SEED_STRIDE));
                let started = Instant::now();
                let report = scenario.run();
                let _ = publish.send(ProgressEvent::Finished {
                    index: task.cell.index,
                    total,
                    label: task.cell.label.clone(),
                    repeat: task.repeat,
                    summary: report.summary(),
                    wall: started.elapsed(),
                });
                report
            });
            // Disconnect the channel so the drainer drains and exits.
            drop(event_tx);
            drainer.join().expect("progress drainer");
            reports
        })
        // Re-raise a worker panic with its original payload so the
        // failing scenario's assert message survives the pool boundary.
        .unwrap_or_else(|panic| std::panic::resume_unwind(panic));

        let mut results = Vec::with_capacity(cells.len());
        let mut reports = reports.into_iter();
        for cell in &cells {
            let runs: Vec<RunReport> = reports.by_ref().take(repeats).collect();
            let stats = CellStats::from_runs(&runs);
            results.push(CellResult {
                label: cell.label.clone(),
                key: cell.scenario.cell(),
                runs,
                stats,
            });
        }
        SuiteReport { name: grid.name().to_string(), cells: results }
    }

    /// Generic ordered parallel map: applies `f` to every item across
    /// the worker pool and returns the results **in item order**,
    /// regardless of completion order. The table binaries that don't run
    /// scenarios (closed-form catalogues, subprocess fan-out) share the
    /// pool through this.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_ordered(items, f)
    }

    fn run_ordered<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.config.workers.max(1).min(items.len());
        if workers == 1 {
            return items.iter().map(f).collect();
        }

        // Pre-load the whole work queue, then drop the sender: workers
        // drain with `recv()` until the channel disconnects.
        let (task_tx, task_rx) = unbounded::<(usize, &T)>();
        for task in items.iter().enumerate() {
            task_tx.send(task).expect("work queue open");
        }
        drop(task_tx);

        let (result_tx, result_rx) = unbounded::<(usize, R)>();
        let f = &f;
        thread::scope(|scope| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move |_| {
                    while let Ok((index, item)) = task_rx.recv() {
                        let result = f(item);
                        result_tx.send((index, result)).expect("result channel open");
                    }
                });
            }
        })
        // Re-raise with the original payload: `expect` would flatten the
        // panic message into `Any { .. }`.
        .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
        drop(result_tx);

        // Restore item order: completion order is scheduler-dependent,
        // the returned Vec never is.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (index, result) in result_rx.iter() {
            debug_assert!(slots[index].is_none(), "each task completes once");
            slots[index] = Some(result);
        }
        slots.into_iter().map(|slot| slot.expect("every task completed")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

    fn driver(workers: usize) -> Driver {
        Driver::new(DriverConfig::default().workers(workers))
    }

    #[test]
    fn map_preserves_item_order_across_workers() {
        let items: Vec<u64> = (0..64).collect();
        let squares = driver(8).map(&items, |&v| v * v);
        assert_eq!(squares, items.iter().map(|v| v * v).collect::<Vec<_>>());
    }

    #[test]
    fn map_on_empty_and_single_worker() {
        let empty: Vec<u32> = Vec::new();
        assert!(driver(4).map(&empty, |&v| v).is_empty());
        assert_eq!(driver(1).map(&[1, 2, 3], |&v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn run_grid_orders_cells_and_aggregates_repeats() {
        let grid = ScenarioGrid::named("pool_test")
            .protocols([Protocol::Eesmr])
            .nodes([5])
            .degrees([2])
            .stop(StopWhen::Blocks(3));
        let suite = Driver::new(DriverConfig::default().workers(4).repeats(2)).run_grid(&grid);
        assert_eq!(suite.name, "pool_test");
        assert_eq!(suite.cells.len(), 1);
        let cell = &suite.cells[0];
        assert_eq!(cell.runs.len(), 2);
        assert!(cell.stats.committed_height.min >= 3.0);
        assert!(cell.stats.energy_per_block_mj.min <= cell.stats.energy_per_block_mj.max);
    }

    #[test]
    fn quick_mode_shrinks_block_targets() {
        let grid =
            ScenarioGrid::named("quick_test").nodes([5]).degrees([2]).stop(StopWhen::Blocks(20));
        let quick = Driver::new(DriverConfig::default().workers(2).quick(true)).run_grid(&grid);
        // The run stopped at the clamped target instead of 20 blocks.
        let height = quick.cells[0].stats.committed_height.mean;
        assert!((3.0..10.0).contains(&height), "quick run committed {height} blocks");
    }

    #[test]
    fn progress_events_cover_every_run() {
        use std::sync::Mutex;
        let grid = ScenarioGrid::named("progress_test")
            .nodes([5, 6])
            .degrees([2])
            .stop(StopWhen::Blocks(2))
            .scenario(
                "vc",
                Scenario::new(Protocol::Eesmr, 5, 2)
                    .faults(FaultPlan::silent_leader())
                    .stop(StopWhen::ViewReached(2)),
            );
        let events = Mutex::new(Vec::new());
        let suite =
            driver(3).run_grid_with_progress(&grid, |event| events.lock().unwrap().push(event));
        let events = events.into_inner().unwrap();
        assert_eq!(suite.cells.len(), 3);
        let starts = events.iter().filter(|e| matches!(e, ProgressEvent::Started { .. })).count();
        let finishes =
            events.iter().filter(|e| matches!(e, ProgressEvent::Finished { .. })).count();
        assert_eq!(starts, 3);
        assert_eq!(finishes, 3);
        assert!(events.iter().any(|e| matches!(
            e,
            ProgressEvent::Finished { label, .. } if label == "vc"
        )));
    }
}
