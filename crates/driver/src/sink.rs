//! Experiment output sinks: the output directory and the CSV series
//! writer shared by the suite reports and every `eesmr-bench` binary
//! (which re-exports these under its old paths).

use std::fs::{self, File};
use std::io::Write as _;
use std::path::PathBuf;

/// Environment variable overriding [`out_dir`].
pub const ENV_OUT_DIR: &str = "EESMR_OUT_DIR";

/// Directory experiment CSVs and suite reports are written to.
/// `$EESMR_OUT_DIR` if set, else `target/experiments/` at the workspace
/// root. Created on first use.
pub fn out_dir() -> PathBuf {
    let dir = match std::env::var_os(ENV_OUT_DIR) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments"),
    };
    fs::create_dir_all(&dir).expect("can create the experiment output directory");
    // Resolve `crates/driver/../..` so the `wrote <path>` lines and the
    // returned paths are clean absolute paths.
    fs::canonicalize(&dir).unwrap_or(dir)
}

/// A CSV series writer.
pub struct Csv {
    file: File,
    path: PathBuf,
}

impl Csv {
    /// Creates `<out_dir>/<name>.csv` with the given header.
    pub fn create(name: &str, header: &[&str]) -> Csv {
        let path = out_dir().join(format!("{name}.csv"));
        let mut file = File::create(&path).expect("can create CSV");
        writeln!(file, "{}", header.join(",")).expect("can write header");
        Csv { file, path }
    }

    /// Appends one row.
    pub fn row(&mut self, values: &[String]) {
        writeln!(self.file, "{}", values.join(",")).expect("can write row");
    }

    /// Convenience for mixed display values.
    pub fn rowd(&mut self, values: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.row(&cells);
    }

    /// Where the series was written.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test (not two) so the env override cannot race the default-path
    // check: tests in one binary share the process environment.
    #[test]
    fn csv_writes_rows_and_out_dir_honors_the_env_override() {
        let mut csv = Csv::create("driver_sink_selftest", &["a", "b"]);
        csv.row(&["1".into(), "2".into()]);
        csv.rowd(&[&3, &4.5]);
        let content = std::fs::read_to_string(csv.path()).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4.5\n");

        let default_dir = out_dir();
        let override_dir = default_dir.join("override_selftest");
        std::env::set_var(ENV_OUT_DIR, &override_dir);
        let redirected = out_dir();
        std::env::remove_var(ENV_OUT_DIR);
        assert_eq!(redirected, override_dir);
        assert!(redirected.is_dir(), "out_dir creates the override directory");
        assert_eq!(out_dir(), default_dir, "clearing the override restores the default");
    }
}
