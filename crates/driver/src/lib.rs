//! Parallel multi-scenario experiment driver.
//!
//! Every figure and table in the paper's evaluation is a sweep over many
//! independent [`Scenario`](eesmr_sim::Scenario) runs. This crate turns
//! those sweeps into data: declare a [`ScenarioGrid`] (cartesian products
//! over protocol × n × k × payload × scheme × seed, plus explicit
//! scenario lists), hand it to a [`Driver`], and get back a
//! [`SuiteReport`] with per-cell [`RunReport`](eesmr_sim::RunReport)s,
//! summary statistics across repeats, and JSON/CSV sinks.
//!
//! The [`Driver`] fans cells out across a crossbeam worker pool
//! (`EESMR_WORKERS` overrides the thread count, `EESMR_QUICK=1` shrinks
//! every scenario to smoke-test size) and **restores grid order**, so a
//! suite is bit-identical whether it ran on 1 worker or 8 — the
//! workspace determinism tests enforce this.
//!
//! # Writing a sweep
//!
//! ```
//! use eesmr_driver::{Driver, DriverConfig, ScenarioGrid};
//! use eesmr_sim::{Protocol, StopWhen};
//!
//! // Fig. 2f in four lines: both protocols over two system sizes.
//! let grid = ScenarioGrid::named("doc_sweep")
//!     .protocols([Protocol::Eesmr, Protocol::SyncHotStuff])
//!     .nodes([5, 6])
//!     .degrees([2])
//!     .stop(StopWhen::Blocks(3));
//! assert_eq!(grid.len(), 4);
//!
//! let suite = Driver::new(DriverConfig::default().workers(2)).run_grid(&grid);
//! assert_eq!(suite.cells.len(), 4);
//!
//! // Cells come back in grid order and are keyed by their sweep axes:
//! let eesmr5 = suite.find(|c| c.protocol == Protocol::Eesmr && c.n == 5).unwrap();
//! assert!(eesmr5.stats.committed_height.min >= 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod grid;
pub mod pool;
pub mod progress;
pub mod report;
pub mod sink;

pub use config::DriverConfig;
pub use grid::{GridCell, ScenarioGrid};
pub use pool::Driver;
pub use progress::ProgressEvent;
pub use report::{CellResult, CellStats, SuitePaths, SuiteReport, Summary};
pub use sink::{out_dir, Csv};
