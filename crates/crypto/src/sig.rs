//! Simulated digital signatures.
//!
//! The offline dependency set contains no real RSA/ECDSA implementation, and
//! the protocols only require signatures for *authentication among simulated
//! parties*. We therefore simulate: a signature is
//! `HMAC-SHA256(secret_key, scheme || signer || message)` tagged with the
//! signer id and scheme. Verification recomputes the tag under the signer's
//! registered key.
//!
//! Within the simulation this gives real unforgeability: fault-injection
//! code never holds another node's [`SecretKey`], so it cannot fabricate a
//! tag that verifies — exactly the guarantee the protocol needs to detect
//! equivocation and validate quorum certificates. The *energy* and *size*
//! of each operation come from the scheme catalogue ([`crate::SigScheme`]),
//! so the evaluation is faithful to the paper's measured costs. See
//! DESIGN.md §2 for the substitution rationale.

use core::fmt;

use crate::digest::Digest;
use crate::hmac::{hmac_sha256, hmac_verify};
use crate::scheme::SigScheme;

/// Identifies a signer. Matches the node ids used by the protocol crates.
pub type SignerId = u32;

/// Secret signing key (32 random bytes).
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    id: SignerId,
    scheme: SigScheme,
    key: [u8; 32],
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(id={}, scheme={})", self.id, self.scheme)
    }
}

/// Public verification key.
///
/// In this simulation the verification key carries the same 32 bytes as the
/// secret key (HMAC is symmetric); the asymmetry of a real scheme is
/// enforced by *distribution*: only the [`KeyStore`](crate::KeyStore) hands
/// out `PublicKey`s, and fault injection code only ever receives the keys a
/// real adversary would hold.
#[derive(Clone, PartialEq, Eq)]
pub struct PublicKey {
    id: SignerId,
    scheme: SigScheme,
    key: [u8; 32],
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey(id={}, scheme={})", self.id, self.scheme)
    }
}

impl PublicKey {
    /// The signer this key belongs to.
    pub fn signer(&self) -> SignerId {
        self.id
    }

    /// The scheme this key belongs to.
    pub fn scheme(&self) -> SigScheme {
        self.scheme
    }

    /// Wire size of this public key in bytes (real-scheme size).
    pub fn wire_size(&self) -> usize {
        self.scheme.public_key_size()
    }
}

/// A key pair for one node.
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a seed.
    ///
    /// Deterministic generation keeps simulations reproducible: the same
    /// run seed always produces the same keys, messages, and traces.
    pub fn derive(id: SignerId, scheme: SigScheme, seed: u64) -> Self {
        let key = *Digest::of_parts(&[b"eesmr-keygen", &seed.to_le_bytes(), &id.to_le_bytes()])
            .as_bytes();
        KeyPair { secret: SecretKey { id, scheme, key }, public: PublicKey { id, scheme, key } }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The signer id.
    pub fn signer(&self) -> SignerId {
        self.secret.id
    }

    /// The scheme.
    pub fn scheme(&self) -> SigScheme {
        self.secret.scheme
    }

    /// Signs `message`, producing `⟨message⟩_i`'s signature component.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let tag = hmac_sha256(
            &self.secret.key,
            &domain_separated(self.secret.scheme, self.secret.id, message),
        );
        Signature { signer: self.secret.id, scheme: self.secret.scheme, tag }
    }
}

/// A signature `σ` on a message.
///
/// Wire size reports the *real* scheme's signature size so communication
/// energy is computed faithfully (e.g. 128 B for RSA-1024).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    signer: SignerId,
    scheme: SigScheme,
    tag: Digest,
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sig(by={}, {}, {})", self.signer, self.scheme, self.tag.short_hex())
    }
}

impl Signature {
    /// Who produced this signature (claimed; verify before trusting).
    pub fn signer(&self) -> SignerId {
        self.signer
    }

    /// The scheme used.
    pub fn scheme(&self) -> SigScheme {
        self.scheme
    }

    /// Wire size in bytes of the equivalent real-world signature.
    pub fn wire_size(&self) -> usize {
        self.scheme.signature_size()
    }

    /// The raw 32-byte authenticator tag, for wire encoding.
    pub fn tag(&self) -> &Digest {
        &self.tag
    }

    /// Reassembles a signature from decoded wire parts.
    ///
    /// This does not weaken unforgeability: a reassembled signature only
    /// passes [`Signature::verify`] if its tag was produced under the
    /// claimed signer's key, which decoding cannot fabricate.
    pub fn from_wire(signer: SignerId, scheme: SigScheme, tag: Digest) -> Signature {
        Signature { signer, scheme, tag }
    }

    /// Verifies this signature against `message` under `pk`.
    ///
    /// Returns `false` if the key belongs to a different signer or scheme.
    pub fn verify(&self, message: &[u8], pk: &PublicKey) -> bool {
        if pk.id != self.signer || pk.scheme != self.scheme {
            return false;
        }
        hmac_verify(&pk.key, &domain_separated(self.scheme, self.signer, message), &self.tag)
    }
}

fn domain_separated(scheme: SigScheme, signer: SignerId, message: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(message.len() + 16);
    buf.extend_from_slice(b"eesmr-sig");
    buf.push(scheme.signature_size() as u8); // scheme discriminant via size+name
    buf.extend_from_slice(scheme.name().as_bytes());
    buf.extend_from_slice(&signer.to_le_bytes());
    buf.extend_from_slice(message);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(id: SignerId) -> KeyPair {
        KeyPair::derive(id, SigScheme::Rsa1024, 7)
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = pair(3);
        let sig = kp.sign(b"proposal");
        assert!(sig.verify(b"proposal", kp.public()));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = pair(3);
        let sig = kp.sign(b"proposal");
        assert!(!sig.verify(b"other", kp.public()));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = pair(1);
        let kp2 = pair(2);
        let sig = kp1.sign(b"m");
        assert!(!sig.verify(b"m", kp2.public()));
    }

    #[test]
    fn verify_rejects_cross_scheme() {
        let a = KeyPair::derive(1, SigScheme::Rsa1024, 7);
        let b = KeyPair::derive(1, SigScheme::Hmac, 7);
        let sig = a.sign(b"m");
        assert!(!sig.verify(b"m", b.public()));
    }

    #[test]
    fn derivation_is_deterministic_per_seed() {
        let a = KeyPair::derive(5, SigScheme::Rsa1024, 42);
        let b = KeyPair::derive(5, SigScheme::Rsa1024, 42);
        let c = KeyPair::derive(5, SigScheme::Rsa1024, 43);
        assert_eq!(a.sign(b"x"), b.sign(b"x"));
        assert_ne!(a.sign(b"x"), c.sign(b"x"));
    }

    #[test]
    fn wire_size_tracks_scheme() {
        let rsa = KeyPair::derive(0, SigScheme::Rsa1024, 1).sign(b"m");
        let ecdsa = KeyPair::derive(0, SigScheme::EcdsaSecp256K1, 1).sign(b"m");
        assert_eq!(rsa.wire_size(), 128);
        assert_eq!(ecdsa.wire_size(), 64);
    }

    #[test]
    fn different_signers_produce_different_tags() {
        let s1 = pair(1).sign(b"m");
        let s2 = pair(2).sign(b"m");
        assert_ne!(s1, s2);
    }

    #[test]
    fn debug_output_redacts_key_material() {
        let kp = pair(9);
        let dbg = format!("{:?}", kp);
        // The hex of the key must not appear in debug output.
        let key_hex = Digest::from_bytes(
            *Digest::of_parts(&[b"eesmr-keygen", &7u64.to_le_bytes(), &9u32.to_le_bytes()])
                .as_bytes(),
        )
        .to_hex();
        assert!(!dbg.contains(&key_hex));
    }
}
