//! PKI setup: key generation and distribution for an `n`-node system.
//!
//! The paper assumes "PKI is used to setup (possibly threshold) keys before
//! starting the protocol" (§2). [`KeyStore`] plays that role: it derives one
//! key pair per node from a run seed and hands out public keys to everyone.

use crate::scheme::SigScheme;
use crate::sig::{KeyPair, PublicKey, Signature, SignerId};

/// The public-key infrastructure for one simulated system.
///
/// # Examples
///
/// ```
/// use eesmr_crypto::{KeyStore, SigScheme};
///
/// let pki = KeyStore::generate(4, SigScheme::Rsa1024, 42);
/// let sig = pki.keypair(2).sign(b"hello");
/// assert!(pki.verify(b"hello", &sig));
/// assert_eq!(pki.n(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct KeyStore {
    scheme: SigScheme,
    pairs: Vec<KeyPair>,
}

impl KeyStore {
    /// Generates keys for nodes `0..n` deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(n: usize, scheme: SigScheme, seed: u64) -> Self {
        assert!(n > 0, "a system needs at least one node");
        let pairs = (0..n as SignerId).map(|id| KeyPair::derive(id, scheme, seed)).collect();
        KeyStore { scheme, pairs }
    }

    /// Number of nodes with registered keys.
    pub fn n(&self) -> usize {
        self.pairs.len()
    }

    /// The scheme all keys use.
    pub fn scheme(&self) -> SigScheme {
        self.scheme
    }

    /// The key pair of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn keypair(&self, id: SignerId) -> &KeyPair {
        &self.pairs[id as usize]
    }

    /// The public key of node `id`, or `None` if unknown.
    pub fn public_key(&self, id: SignerId) -> Option<&PublicKey> {
        self.pairs.get(id as usize).map(KeyPair::public)
    }

    /// Verifies `sig` on `message` against the registered key of the
    /// claimed signer. Unknown signers fail verification.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        match self.public_key(sig.signer()) {
            Some(pk) => sig.verify(message, pk),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_n_distinct_keys() {
        let pki = KeyStore::generate(8, SigScheme::Rsa1024, 1);
        assert_eq!(pki.n(), 8);
        let sigs: Vec<_> = (0..8).map(|i| pki.keypair(i).sign(b"m")).collect();
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert_ne!(sigs[i as usize], sigs[j as usize]);
                }
            }
        }
    }

    #[test]
    fn verify_checks_registered_key() {
        let pki = KeyStore::generate(3, SigScheme::Rsa1024, 1);
        let other = KeyStore::generate(3, SigScheme::Rsa1024, 2);
        let sig = pki.keypair(0).sign(b"m");
        assert!(pki.verify(b"m", &sig));
        // A signature from a different PKI universe (different seed) fails.
        assert!(!other.verify(b"m", &sig));
    }

    #[test]
    fn unknown_signer_fails() {
        let pki = KeyStore::generate(2, SigScheme::Rsa1024, 1);
        let big = KeyStore::generate(5, SigScheme::Rsa1024, 1);
        let sig = big.keypair(4).sign(b"m");
        assert!(!pki.verify(b"m", &sig));
    }

    #[test]
    fn public_key_lookup() {
        let pki = KeyStore::generate(2, SigScheme::Hmac, 1);
        assert!(pki.public_key(1).is_some());
        assert!(pki.public_key(2).is_none());
        assert_eq!(pki.public_key(1).unwrap().signer(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = KeyStore::generate(0, SigScheme::Rsa1024, 1);
    }
}
