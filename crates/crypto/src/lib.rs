//! Cryptographic substrate for the EESMR reproduction.
//!
//! Provides the primitives §2 of the paper assumes:
//!
//! * [`sha256`] — SHA-256 implemented from scratch (FIPS 180-4), used as the
//!   hash function `H` for block chaining and message digests.
//! * [`hmac`] — HMAC-SHA256, the paper's MAC scheme and the engine behind
//!   the simulated signatures.
//! * [`Digest`] / [`Hashable`] — 32-byte digests and canonical encodings.
//! * [`SigScheme`] — the Table 2 catalogue of schemes with measured
//!   per-operation energy costs and real-world wire sizes.
//! * [`KeyPair`] / [`Signature`] / [`KeyStore`] — simulated signatures with
//!   a PKI registry (see DESIGN.md §2 for why simulation preserves the
//!   paper's evaluation).
//!
//! # Quick example
//!
//! ```
//! use eesmr_crypto::{KeyStore, SigScheme, Digest};
//!
//! let pki = KeyStore::generate(4, SigScheme::Rsa1024, 7);
//! let block_hash = Digest::of(b"block #1");
//! let sig = pki.keypair(0).sign(block_hash.as_bytes());
//! assert!(pki.verify(block_hash.as_bytes(), &sig));
//! // Energy accounting uses the scheme's measured costs:
//! assert_eq!(sig.scheme().sign_energy_j(), 0.40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod hmac;
pub mod keystore;
pub mod scheme;
pub mod sha256;
pub mod sig;

pub use digest::{Digest, Hashable};
pub use keystore::KeyStore;
pub use scheme::SigScheme;
pub use sig::{KeyPair, PublicKey, SecretKey, Signature, SignerId};
