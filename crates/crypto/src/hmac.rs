//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! The paper instantiates its MAC scheme with HMAC over SHA-256 and 64-byte
//! keys (§5.5). HMAC also backs the simulated signature schemes in
//! [`crate::sig`].

use crate::digest::Digest;
use crate::sha256::Sha256;

const BLOCK_SIZE: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte SHA-256 block are hashed first, per the
/// HMAC specification.
///
/// # Examples
///
/// ```
/// use eesmr_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_SIZE];
    let mut opad = [0u8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] = key_block[i] ^ IPAD;
        opad[i] = key_block[i] ^ OPAD;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Verifies an HMAC tag in constant shape (full comparison, no early exit on
/// the first mismatching byte).
pub fn hmac_verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
    let expected = hmac_sha256(key, message);
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(tag.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // 131-byte key exercises the hash-the-key path.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_valid_and_rejects_tampered() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(hmac_verify(b"k", b"m", &tag));
        assert!(!hmac_verify(b"k", b"m2", &tag));
        assert!(!hmac_verify(b"k2", b"m", &tag));
        let mut bytes = *tag.as_bytes();
        bytes[0] ^= 1;
        assert!(!hmac_verify(b"k", b"m", &Digest::from_bytes(bytes)));
    }

    #[test]
    fn exactly_block_size_key() {
        let key = [0x42u8; 64];
        let tag = hmac_sha256(&key, b"edge");
        assert!(hmac_verify(&key, b"edge", &tag));
    }
}
