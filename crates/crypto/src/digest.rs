//! 32-byte digests and hashing helpers.

use core::fmt;

use crate::sha256::Sha256;

/// A 256-bit digest — the output of [`Sha256`].
///
/// The protocol uses digests as block identifiers (`block.parent` is the hash
/// of the parent block) and as compact message references in votes.
///
/// # Examples
///
/// ```
/// use eesmr_crypto::Digest;
///
/// let d = Digest::of(b"block contents");
/// assert_eq!(d, Digest::of(b"block contents"));
/// assert_ne!(d, Digest::of(b"other contents"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest([u8; 32]);

impl Digest {
    /// Wire size of a digest in bytes.
    pub const SIZE: usize = 32;

    /// The all-zero digest, used as the parent of the genesis block.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes `data` with SHA-256.
    pub fn of(data: &[u8]) -> Self {
        Sha256::digest(data)
    }

    /// Hashes the concatenation of several byte slices.
    ///
    /// Each part is length-prefixed so that `of_parts(&[a, b])` and
    /// `of_parts(&[ab, empty])` differ (no ambiguity attacks).
    pub fn of_parts(parts: &[&[u8]]) -> Self {
        let mut h = Sha256::new();
        for part in parts {
            h.update(&(part.len() as u64).to_le_bytes());
            h.update(part);
        }
        h.finalize()
    }

    /// Constructs a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex encoding.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// A short prefix of the hex encoding, handy for logs.
    pub fn short_hex(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Interprets the first 8 bytes as a little-endian integer.
    ///
    /// Used for deterministic pseudo-random choices (e.g. random leader
    /// election seeded by view number).
    pub fn to_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

/// Types that have a canonical byte encoding for hashing and signing.
///
/// Implementors must guarantee the encoding is injective (distinct values
/// produce distinct encodings), otherwise signatures could be replayed across
/// semantically different messages.
pub trait Hashable {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Canonical encoding as an owned buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// SHA-256 of the canonical encoding.
    fn digest(&self) -> Digest {
        Digest::of(&self.encoded())
    }
}

impl Hashable for &[u8] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl Hashable for Vec<u8> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl Hashable for Digest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_parts_is_length_prefixed() {
        let a = Digest::of_parts(&[b"ab", b"c"]);
        let b = Digest::of_parts(&[b"a", b"bc"]);
        let c = Digest::of_parts(&[b"abc"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn hex_round_trip_shape() {
        let d = Digest::of(b"x");
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(d.short_hex().len(), 8);
        assert!(d.to_hex().starts_with(&d.short_hex()));
    }

    #[test]
    fn zero_digest_is_zero() {
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(64));
        assert_eq!(Digest::ZERO.to_u64(), 0);
    }

    #[test]
    fn to_u64_differs_across_digests() {
        assert_ne!(Digest::of(b"1").to_u64(), Digest::of(b"2").to_u64());
    }

    #[test]
    fn display_matches_hex() {
        let d = Digest::of(b"display");
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").contains(&d.short_hex()));
    }
}
