//! Signature scheme catalogue with the paper's measured energy costs.
//!
//! Table 2 of the paper reports per-operation energy (in Joules) for signing
//! and verifying under several ECDSA curves, RSA moduli, and HMAC, measured
//! on the NUCLEO-F401RE testbed. Those constants live here, together with
//! real-world signature and public-key sizes so that wire-level message
//! sizes are faithful even though the signatures themselves are simulated
//! (see [`crate::sig`] and DESIGN.md §2).

use core::fmt;

/// A signature scheme evaluated by the paper (Table 2).
///
/// `Rsa1024` is the paper's recommended choice for CPS (§5.5): cheap
/// verification matches the SMR communication pattern of *one* signer and
/// *many* verifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SigScheme {
    /// ECDSA over brainpoolP160r1.
    EcdsaBp160R1,
    /// ECDSA over brainpoolP256r1.
    EcdsaBp256R1,
    /// ECDSA over NIST P-192 (secp192r1).
    EcdsaSecp192R1,
    /// ECDSA over secp192k1.
    EcdsaSecp192K1,
    /// ECDSA over NIST P-224 (secp224r1).
    EcdsaSecp224R1,
    /// ECDSA over NIST P-256 (secp256r1).
    EcdsaSecp256R1,
    /// ECDSA over secp256k1.
    EcdsaSecp256K1,
    /// RSA with a 1024-bit modulus (80-bit security; the paper's pick).
    Rsa1024,
    /// RSA with a 1260-bit modulus.
    Rsa1260,
    /// RSA with a 2048-bit modulus.
    Rsa2048,
    /// HMAC-SHA256 with 64-byte keys (symmetric; no transferable
    /// authentication).
    Hmac,
}

impl SigScheme {
    /// All schemes measured in Table 2, in the paper's row order.
    pub const ALL: [SigScheme; 11] = [
        SigScheme::EcdsaBp160R1,
        SigScheme::EcdsaBp256R1,
        SigScheme::EcdsaSecp192R1,
        SigScheme::EcdsaSecp192K1,
        SigScheme::EcdsaSecp224R1,
        SigScheme::EcdsaSecp256R1,
        SigScheme::EcdsaSecp256K1,
        SigScheme::Rsa1024,
        SigScheme::Rsa1260,
        SigScheme::Rsa2048,
        SigScheme::Hmac,
    ];

    /// Stable one-byte wire tag for this scheme: its index in
    /// [`SigScheme::ALL`]. Frozen by the v1 wire format — append new
    /// schemes to `ALL`, never reorder.
    pub fn wire_tag(self) -> u8 {
        SigScheme::ALL.iter().position(|s| *s == self).expect("scheme listed in ALL") as u8
    }

    /// Inverse of [`SigScheme::wire_tag`]. `None` for tags this build
    /// does not know (a newer peer's scheme).
    pub fn from_wire_tag(tag: u8) -> Option<SigScheme> {
        SigScheme::ALL.get(tag as usize).copied()
    }

    /// Energy to produce one signature, in Joules (Table 2, "Sign").
    pub fn sign_energy_j(self) -> f64 {
        match self {
            SigScheme::EcdsaBp160R1 => 5.80,
            SigScheme::EcdsaBp256R1 => 13.88,
            SigScheme::EcdsaSecp192R1 => 0.84,
            SigScheme::EcdsaSecp192K1 => 1.16,
            SigScheme::EcdsaSecp224R1 => 1.10,
            SigScheme::EcdsaSecp256R1 => 1.60,
            SigScheme::EcdsaSecp256K1 => 1.72,
            SigScheme::Rsa1024 => 0.40,
            SigScheme::Rsa1260 => 0.79,
            SigScheme::Rsa2048 => 2.41,
            SigScheme::Hmac => 0.19,
        }
    }

    /// Energy to verify one signature, in Joules (Table 2, "Verify").
    pub fn verify_energy_j(self) -> f64 {
        match self {
            SigScheme::EcdsaBp160R1 => 11.03,
            SigScheme::EcdsaBp256R1 => 27.34,
            SigScheme::EcdsaSecp192R1 => 1.50,
            SigScheme::EcdsaSecp192K1 => 2.24,
            SigScheme::EcdsaSecp224R1 => 2.14,
            SigScheme::EcdsaSecp256R1 => 3.04,
            SigScheme::EcdsaSecp256K1 => 3.35,
            SigScheme::Rsa1024 => 0.02,
            SigScheme::Rsa1260 => 0.03,
            SigScheme::Rsa2048 => 0.06,
            SigScheme::Hmac => 0.19,
        }
    }

    /// Size of a signature on the wire, in bytes.
    ///
    /// ECDSA signatures are two field elements; RSA signatures are one
    /// modulus-sized integer; HMAC tags are one SHA-256 output.
    pub fn signature_size(self) -> usize {
        match self {
            SigScheme::EcdsaBp160R1 => 40,
            SigScheme::EcdsaBp256R1 => 64,
            SigScheme::EcdsaSecp192R1 | SigScheme::EcdsaSecp192K1 => 48,
            SigScheme::EcdsaSecp224R1 => 56,
            SigScheme::EcdsaSecp256R1 | SigScheme::EcdsaSecp256K1 => 64,
            SigScheme::Rsa1024 => 128,
            SigScheme::Rsa1260 => 158,
            SigScheme::Rsa2048 => 256,
            SigScheme::Hmac => 32,
        }
    }

    /// Size of a public key, in bytes (uncompressed point for ECDSA,
    /// modulus + exponent for RSA, shared 64-byte key for HMAC).
    pub fn public_key_size(self) -> usize {
        match self {
            SigScheme::EcdsaBp160R1 => 41,
            SigScheme::EcdsaBp256R1 => 65,
            SigScheme::EcdsaSecp192R1 | SigScheme::EcdsaSecp192K1 => 49,
            SigScheme::EcdsaSecp224R1 => 57,
            SigScheme::EcdsaSecp256R1 | SigScheme::EcdsaSecp256K1 => 65,
            SigScheme::Rsa1024 => 132,
            SigScheme::Rsa1260 => 162,
            SigScheme::Rsa2048 => 260,
            SigScheme::Hmac => 64,
        }
    }

    /// Approximate classical security level in bits.
    pub fn security_bits(self) -> u32 {
        match self {
            SigScheme::EcdsaBp160R1 => 80,
            SigScheme::EcdsaBp256R1 => 128,
            SigScheme::EcdsaSecp192R1 | SigScheme::EcdsaSecp192K1 => 96,
            SigScheme::EcdsaSecp224R1 => 112,
            SigScheme::EcdsaSecp256R1 | SigScheme::EcdsaSecp256K1 => 128,
            SigScheme::Rsa1024 => 80,
            SigScheme::Rsa1260 => 88,
            SigScheme::Rsa2048 => 112,
            SigScheme::Hmac => 128,
        }
    }

    /// Whether verification transfers to third parties (digital signature)
    /// or not (MAC). MACs cannot prove equivocation to others (§2).
    pub fn transferable(self) -> bool {
        !matches!(self, SigScheme::Hmac)
    }

    /// Human-readable name matching the paper's Table 2 rows.
    pub fn name(self) -> &'static str {
        match self {
            SigScheme::EcdsaBp160R1 => "ECDSA BP160R1",
            SigScheme::EcdsaBp256R1 => "ECDSA BP256R1",
            SigScheme::EcdsaSecp192R1 => "ECDSA SECP192R1",
            SigScheme::EcdsaSecp192K1 => "ECDSA SECP192K1",
            SigScheme::EcdsaSecp224R1 => "ECDSA SECP224R1",
            SigScheme::EcdsaSecp256R1 => "ECDSA SECP256R1",
            SigScheme::EcdsaSecp256K1 => "ECDSA SECP256K1",
            SigScheme::Rsa1024 => "RSA 1024-bit",
            SigScheme::Rsa1260 => "RSA 1260-bit",
            SigScheme::Rsa2048 => "RSA 2048-bit",
            SigScheme::Hmac => "HMAC",
        }
    }
}

impl fmt::Display for SigScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for SigScheme {
    /// The paper's recommended scheme for CPS deployments.
    fn default() -> Self {
        SigScheme::Rsa1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsa1024_matches_paper_table2() {
        assert_eq!(SigScheme::Rsa1024.sign_energy_j(), 0.40);
        assert_eq!(SigScheme::Rsa1024.verify_energy_j(), 0.02);
    }

    #[test]
    fn rsa_is_verification_cheap_ecdsa_is_not() {
        // The paper's key observation (§5.5): RSA verifies cheaply, ECDSA
        // verification costs roughly 2x its signing.
        for s in [SigScheme::Rsa1024, SigScheme::Rsa1260, SigScheme::Rsa2048] {
            assert!(s.verify_energy_j() < s.sign_energy_j() / 10.0, "{s}");
        }
        for s in [SigScheme::EcdsaSecp192R1, SigScheme::EcdsaSecp256K1, SigScheme::EcdsaBp160R1] {
            assert!(s.verify_energy_j() > s.sign_energy_j(), "{s}");
        }
    }

    #[test]
    fn brainpool_more_expensive_than_nist() {
        // §5.5: brainpool curves cost ~5J/11J vs ~1J/2J for NIST curves at
        // comparable sizes.
        assert!(
            SigScheme::EcdsaBp160R1.sign_energy_j() > SigScheme::EcdsaSecp192R1.sign_energy_j()
        );
        assert!(
            SigScheme::EcdsaBp256R1.verify_energy_j() > SigScheme::EcdsaSecp256R1.verify_energy_j()
        );
    }

    #[test]
    fn hmac_is_symmetric_cost() {
        assert_eq!(SigScheme::Hmac.sign_energy_j(), SigScheme::Hmac.verify_energy_j());
        assert!(!SigScheme::Hmac.transferable());
        assert!(SigScheme::Rsa1024.transferable());
    }

    #[test]
    fn sizes_are_positive_and_plausible() {
        for s in SigScheme::ALL {
            assert!(s.signature_size() >= 32, "{s}");
            assert!(s.public_key_size() >= 32, "{s}");
            assert!(s.security_bits() >= 80, "{s}");
        }
        assert_eq!(SigScheme::Rsa1024.signature_size(), 128);
        assert_eq!(SigScheme::EcdsaSecp256K1.signature_size(), 64);
    }

    #[test]
    fn all_contains_every_scheme_once() {
        let mut names: Vec<_> = SigScheme::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SigScheme::ALL.len());
    }

    #[test]
    fn default_is_rsa1024() {
        assert_eq!(SigScheme::default(), SigScheme::Rsa1024);
    }
}
