//! Property tests for the crypto substrate.

use eesmr_crypto::{hmac::hmac_sha256, sha256::Sha256, Digest, KeyStore, SigScheme};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Streaming over arbitrary chunk boundaries equals one-shot hashing.
    #[test]
    fn sha256_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048),
                                       cuts in prop::collection::vec(any::<u16>(), 0..8)) {
        let oneshot = Sha256::digest(&data);
        let mut h = Sha256::new();
        let mut start = 0usize;
        let mut points: Vec<usize> = cuts.iter().map(|c| *c as usize % (data.len() + 1)).collect();
        points.sort_unstable();
        for p in points {
            h.update(&data[start..p.max(start)]);
            start = p.max(start);
        }
        h.update(&data[start..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// A single flipped bit changes the digest.
    #[test]
    fn sha256_bit_flip_changes_digest(mut data in prop::collection::vec(any::<u8>(), 1..512),
                                      byte in any::<usize>(), bit in 0u8..8) {
        let original = Sha256::digest(&data);
        let idx = byte % data.len();
        data[idx] ^= 1 << bit;
        prop_assert_ne!(Sha256::digest(&data), original);
    }

    /// HMAC separates keys and messages.
    #[test]
    fn hmac_domain_separation(key1 in prop::collection::vec(any::<u8>(), 1..100),
                              key2 in prop::collection::vec(any::<u8>(), 1..100),
                              msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let t1 = hmac_sha256(&key1, &msg);
        prop_assert_eq!(t1, hmac_sha256(&key1, &msg), "deterministic");
        if key1 != key2 {
            prop_assert_ne!(t1, hmac_sha256(&key2, &msg));
        }
    }

    /// `of_parts` never collides with a different split of the same bytes.
    #[test]
    fn of_parts_resists_boundary_shifts(a in prop::collection::vec(any::<u8>(), 1..64),
                                        b in prop::collection::vec(any::<u8>(), 1..64),
                                        shift in 1usize..63) {
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let shift = shift % joined.len();
        let (left, right) = joined.split_at(shift);
        if left != a.as_slice() {
            prop_assert_ne!(
                Digest::of_parts(&[&a, &b]),
                Digest::of_parts(&[left, right]),
                "different part boundaries must hash differently"
            );
        }
    }

    /// Signatures bind scheme, signer, and message across all schemes.
    #[test]
    fn signatures_bind_all_inputs(msg in prop::collection::vec(any::<u8>(), 0..128),
                                  scheme_idx in 0usize..11, signer in 0u32..3) {
        let scheme = SigScheme::ALL[scheme_idx];
        let pki = KeyStore::generate(3, scheme, 9);
        let sig = pki.keypair(signer).sign(&msg);
        prop_assert!(pki.verify(&msg, &sig));
        prop_assert_eq!(sig.wire_size(), scheme.signature_size());
        let mut tampered = msg.clone();
        tampered.push(0);
        prop_assert!(!pki.verify(&tampered, &sig));
    }
}
