//! Property tests for the energy model, including a Monte-Carlo check of
//! the closed-form k-cast reliability formula.

use eesmr_energy::psi::{PsiParams, PsiProtocol};
use eesmr_energy::{BleKcastModel, Medium};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulates `trials` k-casts with redundancy `r` and per-packet loss `p`,
/// counting how often at least one of `k` receivers misses all copies.
fn monte_carlo_failure(p: f64, k: usize, r: u32, trials: u32, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u32;
    for _ in 0..trials {
        let any_receiver_missed = (0..k).any(|_| (0..r).all(|_| rng.gen::<f64>() < p));
        if any_receiver_missed {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The analytic failure probability matches simulation within noise.
    #[test]
    fn closed_form_matches_monte_carlo(k in 1usize..8, r in 1u32..5, seed in 0u64..100) {
        let model = BleKcastModel::default();
        let analytic = model.fragment_failure_prob(k, r);
        let simulated = monte_carlo_failure(model.packet_loss, k, r, 20_000, seed);
        // Allow generous sampling noise around small probabilities.
        let tol = 0.02 + analytic * 0.2;
        prop_assert!(
            (analytic - simulated).abs() <= tol,
            "analytic {analytic} vs simulated {simulated} (k={k}, r={r})"
        );
    }

    /// ψ is monotone in payload for every protocol.
    #[test]
    fn psi_monotone_in_payload(n in 4usize..12, m in 16usize..1024, extra in 1usize..512) {
        for proto in [
            PsiProtocol::Eesmr,
            PsiProtocol::SyncHotStuff,
            PsiProtocol::OptSync,
            PsiProtocol::TrustedBaseline,
        ] {
            let small = proto.psi_best(&PsiParams::fig1(n, m)).total_mj();
            let large = proto.psi_best(&PsiParams::fig1(n, m + extra)).total_mj();
            prop_assert!(large >= small, "{proto:?} not monotone in payload");
        }
    }

    /// ψ is monotone in n for the networked protocols.
    #[test]
    fn psi_monotone_in_n(n in 4usize..12, m in 16usize..1024) {
        for proto in [PsiProtocol::Eesmr, PsiProtocol::SyncHotStuff, PsiProtocol::TrustedBaseline] {
            let small = proto.psi_best(&PsiParams::fig1(n, m)).total_mj();
            let large = proto.psi_best(&PsiParams::fig1(n + 1, m)).total_mj();
            prop_assert!(large > small, "{proto:?} not monotone in n");
        }
    }

    /// Multicast never costs more than the equivalent unicasts on BLE.
    #[test]
    fn ble_multicast_cheaper_than_send(bytes in 1usize..4096) {
        prop_assert!(Medium::Ble.multicast_send_mj(bytes) <= Medium::Ble.send_mj(bytes) * 1.01);
    }
}
