//! Asymptotic protocol comparison — the data behind paper Table 3.
//!
//! Table 3 compares best-case (correct leader) and worst-case (faulty
//! leader) communication complexity, public-key operation counts, and block
//! period for five SMR protocols over a partially connected `d`-regular
//! network. The entries here are structured so both the table printer and
//! the empirical scaling tests can consume them.

use core::fmt;

/// A symbolic complexity term `c · n^a · d^b` (constants dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Complexity {
    /// Exponent of `n`.
    pub n_exp: u32,
    /// Exponent of `d`.
    pub d_exp: u32,
}

impl Complexity {
    /// `O(1)`.
    pub const CONSTANT: Complexity = Complexity { n_exp: 0, d_exp: 0 };

    /// Evaluates the term for concrete `n`, `d` (leading constant 1).
    pub fn eval(&self, n: usize, d: usize) -> u64 {
        (n as u64).pow(self.n_exp) * (d as u64).pow(self.d_exp)
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O(")?;
        match (self.n_exp, self.d_exp) {
            (0, 0) => write!(f, "1")?,
            (ne, de) => {
                if ne == 1 {
                    write!(f, "n")?;
                } else if ne > 1 {
                    write!(f, "n^{ne}")?;
                }
                if de == 1 {
                    write!(f, "d")?;
                } else if de > 1 {
                    write!(f, "d^{de}")?;
                }
            }
        }
        write!(f, ")")
    }
}

/// Block period — time between successive proposals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPeriod {
    /// Streaming: the leader proposes continuously (EESMR's 0 period).
    Zero,
    /// A multiple of the actual network delay δ.
    DeltaSmall(u32),
    /// A multiple of the pessimistic bound Δ.
    DeltaBig(u32),
    /// Not reported by the source paper.
    Unreported,
}

impl fmt::Display for BlockPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockPeriod::Zero => write!(f, "0"),
            BlockPeriod::DeltaSmall(k) => write!(f, "{k}δ"),
            BlockPeriod::DeltaBig(k) => write!(f, "{k}Δ"),
            BlockPeriod::Unreported => write!(f, "—"),
        }
    }
}

/// One side (best or worst case) of a Table 3 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseComplexity {
    /// Communication complexity.
    pub communication: Complexity,
    /// Signing operations.
    pub signs: Complexity,
    /// Verification operations.
    pub verifies: Complexity,
    /// Block period.
    pub period: BlockPeriod,
}

/// One Table 3 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolRow {
    /// Protocol name as printed in the paper.
    pub name: &'static str,
    /// Correct-leader (best-case) column group.
    pub best: CaseComplexity,
    /// Faulty-leader (worst-case) column group.
    pub worst: CaseComplexity,
}

/// The five rows of Table 3, in the paper's order.
pub fn table3_rows() -> [ProtocolRow; 5] {
    let c = |n_exp, d_exp| Complexity { n_exp, d_exp };
    [
        ProtocolRow {
            name: "Abraham et al.",
            best: CaseComplexity {
                communication: c(2, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::Unreported,
            },
            worst: CaseComplexity {
                communication: c(3, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::Unreported,
            },
        },
        ProtocolRow {
            name: "Sync HotStuff",
            best: CaseComplexity {
                communication: c(2, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::DeltaSmall(2),
            },
            worst: CaseComplexity {
                communication: c(3, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::DeltaBig(14),
            },
        },
        ProtocolRow {
            name: "OptSync",
            best: CaseComplexity {
                communication: c(2, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::DeltaSmall(2),
            },
            worst: CaseComplexity {
                communication: c(3, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::DeltaBig(14),
            },
        },
        ProtocolRow {
            name: "Rotating BFT SMR",
            best: CaseComplexity {
                communication: c(2, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::DeltaSmall(2),
            },
            worst: CaseComplexity {
                communication: c(2, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::DeltaBig(14),
            },
        },
        ProtocolRow {
            name: "EESMR",
            best: CaseComplexity {
                communication: c(1, 1),
                signs: Complexity::CONSTANT,
                verifies: c(1, 0),
                period: BlockPeriod::Zero,
            },
            worst: CaseComplexity {
                communication: c(3, 1),
                signs: c(1, 0),
                verifies: c(2, 0),
                period: BlockPeriod::DeltaBig(21),
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eesmr_row_matches_paper_claims() {
        let rows = table3_rows();
        let eesmr = rows.iter().find(|r| r.name == "EESMR").unwrap();
        assert_eq!(eesmr.best.communication, Complexity { n_exp: 1, d_exp: 1 });
        assert_eq!(eesmr.best.signs, Complexity::CONSTANT);
        assert_eq!(eesmr.best.period, BlockPeriod::Zero);
        assert_eq!(eesmr.worst.period, BlockPeriod::DeltaBig(21));
    }

    #[test]
    fn eesmr_is_strictly_cheaper_than_synchs_best_case() {
        let rows = table3_rows();
        let eesmr = &rows[4].best;
        let synchs = &rows[1].best;
        for (n, d) in [(8usize, 3usize), (16, 4), (64, 8)] {
            assert!(eesmr.communication.eval(n, d) < synchs.communication.eval(n, d));
            assert!(eesmr.signs.eval(n, d) <= synchs.signs.eval(n, d));
            assert!(eesmr.verifies.eval(n, d) < synchs.verifies.eval(n, d));
        }
    }

    #[test]
    fn complexity_display() {
        assert_eq!(Complexity { n_exp: 2, d_exp: 1 }.to_string(), "O(n^2d)");
        assert_eq!(Complexity { n_exp: 1, d_exp: 0 }.to_string(), "O(n)");
        assert_eq!(Complexity::CONSTANT.to_string(), "O(1)");
    }

    #[test]
    fn period_display() {
        assert_eq!(BlockPeriod::Zero.to_string(), "0");
        assert_eq!(BlockPeriod::DeltaSmall(2).to_string(), "2δ");
        assert_eq!(BlockPeriod::DeltaBig(14).to_string(), "14Δ");
        assert_eq!(BlockPeriod::Unreported.to_string(), "—");
    }

    #[test]
    fn eval_computes_products() {
        let c = Complexity { n_exp: 2, d_exp: 1 };
        assert_eq!(c.eval(10, 3), 300);
        assert_eq!(Complexity::CONSTANT.eval(99, 99), 1);
    }

    #[test]
    fn all_rows_present_in_paper_order() {
        let names: Vec<_> = table3_rows().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["Abraham et al.", "Sync HotStuff", "OptSync", "Rotating BFT SMR", "EESMR"]
        );
    }
}
