//! Energy model for BFT-SMR protocols — the analytical core of the paper.
//!
//! This crate packages everything the paper's Sections 4 and 5 use to
//! reason about energy:
//!
//! * [`Medium`] — the Table 1 media (BLE, 4G LTE, WiFi) with measured
//!   send/receive/multicast costs and size interpolation.
//! * [`ble`] — the BLE advertisement k-cast reliability model of §5.4
//!   (fragmentation, per-packet loss, redundancy for a target reliability)
//!   and the GATT unicast comparison arm (Fig. 2a/2b).
//! * [`EnergyMeter`] — per-node accounting of send/recv/sign/verify/hash
//!   energy, replacing the paper's INA169 measurement chain.
//! * [`psi`] — the §4 ψ cost functions for EESMR, Sync HotStuff, OptSync
//!   and the trusted baseline, plus the ν_f break-even ratio and the
//!   energy-fault bound f_e (equation EB).
//! * [`FeasibleRegion`] — the Fig. 1 grid analysis.
//! * [`complexity`] — the structured Table 3 rows.
//!
//! # Example: when is EESMR the right choice?
//!
//! ```
//! use eesmr_energy::{FeasibleRegion, psi::{PsiParams, PsiProtocol, energy_fault_bound}};
//!
//! // Fig. 1 setting: WiFi between nodes, 4G to the trusted node, RSA-1024.
//! let region = FeasibleRegion::compute(&[4, 8, 12], &[256, 1024]);
//! assert!(region.cell(4, 1024).unwrap().eesmr_favoured());
//!
//! // Energy-fault bound (EB): how many worst-case events can EESMR absorb
//! // and still beat the baseline?
//! let p = PsiParams::fig1(4, 1024);
//! let fe = energy_fault_bound(
//!     PsiProtocol::TrustedBaseline.psi_best(&p).total_mj(),
//!     PsiProtocol::Eesmr.psi_best(&p).total_mj(),
//!     PsiProtocol::Eesmr.psi_view_change(&p).total_mj(),
//! );
//! assert!(fe >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ble;
pub mod complexity;
pub mod feasible;
pub mod medium;
pub mod meter;
pub mod psi;

pub use ble::{BleGattModel, BleKcastModel, ADV_PAYLOAD_BYTES};
pub use feasible::{FeasibleCell, FeasibleRegion};
pub use medium::Medium;
pub use meter::{
    EnergyAttribution, EnergyCategory, EnergyClass, EnergyMeter, EnergyPhase, HASH_MJ_PER_BYTE,
    N_ENERGY_CLASS, N_ENERGY_PHASE,
};
