//! Per-node energy accounting.
//!
//! The paper measures node energy with a Saleae Logic-Pro 8 + INA169
//! current sensors and subtracts the sleep-state baseline (§5.6). The
//! simulator replaces that measurement chain with explicit accounting:
//! every send, receive, signature, verification, and hash is charged to an
//! [`EnergyMeter`] at the calibrated per-operation cost.

use core::fmt;

use eesmr_crypto::SigScheme;

/// Energy cost of hashing, per byte, in mJ.
///
/// Calibrated from the paper's HMAC measurement (0.19 J per MAC over a
/// ~1 kB message, "the major cost in the HMAC scheme was mostly due to the
/// underlying SHA-256", §5.5) — ≈0.09 mJ per hashed byte on the
/// Cortex-M4 testbed.
pub const HASH_MJ_PER_BYTE: f64 = 0.09;

/// Categories of energy expenditure tracked per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Radio transmission.
    Send,
    /// Radio reception / scanning.
    Recv,
    /// Signature generation.
    Sign,
    /// Signature verification.
    Verify,
    /// Hashing (block ids, message digests).
    Hash,
}

impl EnergyCategory {
    /// All categories, in display order.
    pub const ALL: [EnergyCategory; 5] = [
        EnergyCategory::Send,
        EnergyCategory::Recv,
        EnergyCategory::Sign,
        EnergyCategory::Verify,
        EnergyCategory::Hash,
    ];

    fn index(self) -> usize {
        match self {
            EnergyCategory::Send => 0,
            EnergyCategory::Recv => 1,
            EnergyCategory::Sign => 2,
            EnergyCategory::Verify => 3,
            EnergyCategory::Hash => 4,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnergyCategory::Send => "send",
            EnergyCategory::Recv => "recv",
            EnergyCategory::Sign => "sign",
            EnergyCategory::Verify => "verify",
            EnergyCategory::Hash => "hash",
        })
    }
}

/// Accumulates energy (mJ) and operation counts per category.
///
/// # Examples
///
/// ```
/// use eesmr_energy::{EnergyMeter, EnergyCategory};
/// use eesmr_crypto::SigScheme;
///
/// let mut meter = EnergyMeter::new();
/// meter.charge_sign(SigScheme::Rsa1024);     // 0.40 J
/// meter.charge_verify(SigScheme::Rsa1024);   // 0.02 J
/// meter.charge(EnergyCategory::Send, 5.3);   // one reliable k-cast, mJ
/// assert!((meter.total_mj() - 425.3).abs() < 1e-9);
/// assert_eq!(meter.count(EnergyCategory::Sign), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    mj: [f64; 5],
    counts: [u64; 5],
}

impl EnergyMeter {
    /// A meter with all categories at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `mj` millijoules to `category` and counts one operation.
    pub fn charge(&mut self, category: EnergyCategory, mj: f64) {
        debug_assert!(mj >= 0.0, "energy cannot be negative");
        self.mj[category.index()] += mj;
        self.counts[category.index()] += 1;
    }

    /// Charges one signature generation under `scheme`.
    pub fn charge_sign(&mut self, scheme: SigScheme) {
        self.charge(EnergyCategory::Sign, scheme.sign_energy_j() * 1000.0);
    }

    /// Charges one signature verification under `scheme`.
    pub fn charge_verify(&mut self, scheme: SigScheme) {
        self.charge(EnergyCategory::Verify, scheme.verify_energy_j() * 1000.0);
    }

    /// Charges hashing `bytes` bytes.
    pub fn charge_hash(&mut self, bytes: usize) {
        self.charge(EnergyCategory::Hash, bytes as f64 * HASH_MJ_PER_BYTE);
    }

    /// Energy accumulated in `category`, mJ.
    pub fn mj(&self, category: EnergyCategory) -> f64 {
        self.mj[category.index()]
    }

    /// Operations counted in `category`.
    pub fn count(&self, category: EnergyCategory) -> u64 {
        self.counts[category.index()]
    }

    /// Total energy across all categories, mJ.
    pub fn total_mj(&self) -> f64 {
        self.mj.iter().sum()
    }

    /// Adds another meter's totals into this one (for aggregating a whole
    /// system's consumption).
    pub fn absorb(&mut self, other: &EnergyMeter) {
        for i in 0..self.mj.len() {
            self.mj[i] += other.mj[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Difference `self - baseline`, clamped at zero per category. Mirrors
    /// the paper's subtraction of sleep-state energy from measurements.
    pub fn since(&self, baseline: &EnergyMeter) -> EnergyMeter {
        let mut out = EnergyMeter::new();
        for i in 0..self.mj.len() {
            out.mj[i] = (self.mj[i] - baseline.mj[i]).max(0.0);
            out.counts[i] = self.counts[i].saturating_sub(baseline.counts[i]);
        }
        out
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} mJ (", self.total_mj())?;
        for (i, cat) in EnergyCategory::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{cat}: {:.2}", self.mj(*cat))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyCategory::Send, 1.5);
        m.charge(EnergyCategory::Send, 2.5);
        m.charge(EnergyCategory::Recv, 1.0);
        assert_eq!(m.mj(EnergyCategory::Send), 4.0);
        assert_eq!(m.count(EnergyCategory::Send), 2);
        assert_eq!(m.total_mj(), 5.0);
    }

    #[test]
    fn scheme_charges_use_table2() {
        let mut m = EnergyMeter::new();
        m.charge_sign(SigScheme::Rsa1024);
        assert_eq!(m.mj(EnergyCategory::Sign), 400.0);
        m.charge_verify(SigScheme::EcdsaBp256R1);
        assert_eq!(m.mj(EnergyCategory::Verify), 27_340.0);
    }

    #[test]
    fn hash_charge_is_linear_in_bytes() {
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        a.charge_hash(100);
        b.charge_hash(200);
        assert!((b.mj(EnergyCategory::Hash) - 2.0 * a.mj(EnergyCategory::Hash)).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_meters() {
        let mut a = EnergyMeter::new();
        a.charge(EnergyCategory::Send, 1.0);
        let mut b = EnergyMeter::new();
        b.charge(EnergyCategory::Send, 2.0);
        b.charge(EnergyCategory::Hash, 3.0);
        a.absorb(&b);
        assert_eq!(a.mj(EnergyCategory::Send), 3.0);
        assert_eq!(a.mj(EnergyCategory::Hash), 3.0);
        assert_eq!(a.count(EnergyCategory::Send), 2);
    }

    #[test]
    fn since_subtracts_baseline() {
        let mut base = EnergyMeter::new();
        base.charge(EnergyCategory::Send, 1.0);
        let mut now = base.clone();
        now.charge(EnergyCategory::Send, 4.0);
        now.charge(EnergyCategory::Sign, 2.0);
        let d = now.since(&base);
        assert_eq!(d.mj(EnergyCategory::Send), 4.0);
        assert_eq!(d.mj(EnergyCategory::Sign), 2.0);
        assert_eq!(d.count(EnergyCategory::Send), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyCategory::Verify, 9.0);
        m.reset();
        assert_eq!(m.total_mj(), 0.0);
        assert_eq!(m.count(EnergyCategory::Verify), 0);
    }

    #[test]
    fn display_includes_total_and_categories() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyCategory::Send, 1.25);
        let s = m.to_string();
        assert!(s.contains("1.25"));
        assert!(s.contains("send"));
    }
}
