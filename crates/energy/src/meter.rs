//! Per-node energy accounting.
//!
//! The paper measures node energy with a Saleae Logic-Pro 8 + INA169
//! current sensors and subtracts the sleep-state baseline (§5.6). The
//! simulator replaces that measurement chain with explicit accounting:
//! every send, receive, signature, verification, and hash is charged to an
//! [`EnergyMeter`] at the calibrated per-operation cost.

use core::fmt;

use eesmr_crypto::SigScheme;

/// Energy cost of hashing, per byte, in mJ.
///
/// Calibrated from the paper's HMAC measurement (0.19 J per MAC over a
/// ~1 kB message, "the major cost in the HMAC scheme was mostly due to the
/// underlying SHA-256", §5.5) — ≈0.09 mJ per hashed byte on the
/// Cortex-M4 testbed.
pub const HASH_MJ_PER_BYTE: f64 = 0.09;

/// Categories of energy expenditure tracked per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Radio transmission.
    Send,
    /// Radio reception / scanning.
    Recv,
    /// Signature generation.
    Sign,
    /// Signature verification.
    Verify,
    /// Hashing (block ids, message digests).
    Hash,
}

impl EnergyCategory {
    /// All categories, in display order.
    pub const ALL: [EnergyCategory; 5] = [
        EnergyCategory::Send,
        EnergyCategory::Recv,
        EnergyCategory::Sign,
        EnergyCategory::Verify,
        EnergyCategory::Hash,
    ];

    fn index(self) -> usize {
        match self {
            EnergyCategory::Send => 0,
            EnergyCategory::Recv => 1,
            EnergyCategory::Sign => 2,
            EnergyCategory::Verify => 3,
            EnergyCategory::Hash => 4,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnergyCategory::Send => "send",
            EnergyCategory::Recv => "recv",
            EnergyCategory::Sign => "sign",
            EnergyCategory::Verify => "verify",
            EnergyCategory::Hash => "hash",
        })
    }
}

/// Protocol phase an energy charge is attributed to.
///
/// The runtime stamps each actor invocation with the phase of the message
/// being processed (via `Message::phase()` in `eesmr-net`), so compute
/// charges made inside the handler — signatures, verifications, hashing —
/// land in the phase that caused them without the protocol code naming
/// phases at every charge site. Timer-driven work (pacing proposals,
/// retransmits) is attributed to [`EnergyPhase::Timer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EnergyPhase {
    /// Block proposal dissemination.
    Propose,
    /// Voting / acknowledgement traffic.
    Vote,
    /// Commit / decide announcements.
    Commit,
    /// View-change and new-view machinery.
    ViewChange,
    /// Status / heartbeat / wish traffic.
    Status,
    /// Client-command forwarding to the proposer.
    Forward,
    /// State sync / repair traffic.
    Sync,
    /// Timer-driven local work (pacing, retransmit checks).
    Timer,
    /// Anything not tagged with a more specific phase.
    #[default]
    Other,
}

/// Number of [`EnergyPhase`] variants (matrix dimension).
pub const N_ENERGY_PHASE: usize = 9;

impl EnergyPhase {
    /// All phases, in display order.
    pub const ALL: [EnergyPhase; N_ENERGY_PHASE] = [
        EnergyPhase::Propose,
        EnergyPhase::Vote,
        EnergyPhase::Commit,
        EnergyPhase::ViewChange,
        EnergyPhase::Status,
        EnergyPhase::Forward,
        EnergyPhase::Sync,
        EnergyPhase::Timer,
        EnergyPhase::Other,
    ];

    fn index(self) -> usize {
        match self {
            EnergyPhase::Propose => 0,
            EnergyPhase::Vote => 1,
            EnergyPhase::Commit => 2,
            EnergyPhase::ViewChange => 3,
            EnergyPhase::Status => 4,
            EnergyPhase::Forward => 5,
            EnergyPhase::Sync => 6,
            EnergyPhase::Timer => 7,
            EnergyPhase::Other => 8,
        }
    }

    /// Stable lowercase label (Prometheus label value, CSV column stem).
    pub fn as_str(self) -> &'static str {
        match self {
            EnergyPhase::Propose => "propose",
            EnergyPhase::Vote => "vote",
            EnergyPhase::Commit => "commit",
            EnergyPhase::ViewChange => "view_change",
            EnergyPhase::Status => "status",
            EnergyPhase::Forward => "forward",
            EnergyPhase::Sync => "sync",
            EnergyPhase::Timer => "timer",
            EnergyPhase::Other => "other",
        }
    }
}

impl fmt::Display for EnergyPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fine-grained class of an energy charge — the receive classes split the
/// paper's scan-aware pricing (PR 8) into its constituent paths, so the
/// breakdown table can show *why* a node's radio budget went where it did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EnergyClass {
    /// Radio transmission (advertisement train / connection payload).
    Send,
    /// Fresh reception that opened a full scan window (BLE k-cast).
    RecvScan,
    /// Fresh reception priced as decode only (connection-oriented media,
    /// or any medium without a scanning radio model).
    RecvDecode,
    /// Duplicate flood abandoned after one advertisement slot.
    DupAbandoned,
    /// Reception that piggybacked on an already-open scan window.
    SharedScan,
    /// Signature generation.
    Sign,
    /// Signature verification.
    Verify,
    /// Hashing.
    #[default]
    Hash,
}

/// Number of [`EnergyClass`] variants (matrix dimension).
pub const N_ENERGY_CLASS: usize = 8;

impl EnergyClass {
    /// All classes, in display order.
    pub const ALL: [EnergyClass; N_ENERGY_CLASS] = [
        EnergyClass::Send,
        EnergyClass::RecvScan,
        EnergyClass::RecvDecode,
        EnergyClass::DupAbandoned,
        EnergyClass::SharedScan,
        EnergyClass::Sign,
        EnergyClass::Verify,
        EnergyClass::Hash,
    ];

    fn index(self) -> usize {
        match self {
            EnergyClass::Send => 0,
            EnergyClass::RecvScan => 1,
            EnergyClass::RecvDecode => 2,
            EnergyClass::DupAbandoned => 3,
            EnergyClass::SharedScan => 4,
            EnergyClass::Sign => 5,
            EnergyClass::Verify => 6,
            EnergyClass::Hash => 7,
        }
    }

    /// Stable lowercase label (Prometheus label value, CSV column stem).
    pub fn as_str(self) -> &'static str {
        match self {
            EnergyClass::Send => "send",
            EnergyClass::RecvScan => "recv_scan",
            EnergyClass::RecvDecode => "recv_decode",
            EnergyClass::DupAbandoned => "dup_abandoned",
            EnergyClass::SharedScan => "shared_scan",
            EnergyClass::Sign => "sign",
            EnergyClass::Verify => "verify",
            EnergyClass::Hash => "hash",
        }
    }

    /// The class an untagged charge in `category` falls into. Receive
    /// charges default to [`EnergyClass::RecvDecode`]; callers that know
    /// the scan-aware pricing path use [`EnergyMeter::charge_as`].
    pub fn of_category(category: EnergyCategory) -> EnergyClass {
        match category {
            EnergyCategory::Send => EnergyClass::Send,
            EnergyCategory::Recv => EnergyClass::RecvDecode,
            EnergyCategory::Sign => EnergyClass::Sign,
            EnergyCategory::Verify => EnergyClass::Verify,
            EnergyCategory::Hash => EnergyClass::Hash,
        }
    }
}

impl fmt::Display for EnergyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Snapshot of a meter's per-(phase × class) attribution matrix, in mJ.
///
/// Every millijoule charged to the meter lands in exactly one cell, so
/// marginalising over phases recovers the class totals and summing the
/// whole matrix recovers [`EnergyMeter::total_mj`] (to floating-point
/// rounding, far below the µJ the reports print).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAttribution {
    matrix: [[f64; N_ENERGY_CLASS]; N_ENERGY_PHASE],
}

impl Default for EnergyAttribution {
    fn default() -> Self {
        Self { matrix: [[0.0; N_ENERGY_CLASS]; N_ENERGY_PHASE] }
    }
}

impl EnergyAttribution {
    /// Energy attributed to `(phase, class)`, mJ.
    pub fn mj(&self, phase: EnergyPhase, class: EnergyClass) -> f64 {
        self.matrix[phase.index()][class.index()]
    }

    /// Energy attributed to `class` across all phases, mJ.
    pub fn class_mj(&self, class: EnergyClass) -> f64 {
        self.matrix.iter().map(|row| row[class.index()]).sum()
    }

    /// Energy attributed to `phase` across all classes, mJ.
    pub fn phase_mj(&self, phase: EnergyPhase) -> f64 {
        self.matrix[phase.index()].iter().sum()
    }

    /// Sum of the whole matrix, mJ — equals the meter's total.
    pub fn total_mj(&self) -> f64 {
        self.matrix.iter().flatten().sum()
    }

    /// True if no energy has been attributed.
    pub fn is_empty(&self) -> bool {
        self.matrix.iter().flatten().all(|&v| v == 0.0)
    }

    /// Adds another attribution into this one.
    pub fn absorb(&mut self, other: &EnergyAttribution) {
        for (p, row) in other.matrix.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                self.matrix[p][c] += v;
            }
        }
    }
}

/// Accumulates energy (mJ) and operation counts per category.
///
/// # Examples
///
/// ```
/// use eesmr_energy::{EnergyMeter, EnergyCategory};
/// use eesmr_crypto::SigScheme;
///
/// let mut meter = EnergyMeter::new();
/// meter.charge_sign(SigScheme::Rsa1024);     // 0.40 J
/// meter.charge_verify(SigScheme::Rsa1024);   // 0.02 J
/// meter.charge(EnergyCategory::Send, 5.3);   // one reliable k-cast, mJ
/// assert!((meter.total_mj() - 425.3).abs() < 1e-9);
/// assert_eq!(meter.count(EnergyCategory::Sign), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    mj: [f64; 5],
    counts: [u64; 5],
    phase: EnergyPhase,
    attr: EnergyAttribution,
}

impl EnergyMeter {
    /// A meter with all categories at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `mj` millijoules to `category` and counts one operation.
    /// Attributed to the active [`EnergyPhase`] and the category's
    /// default [`EnergyClass`].
    pub fn charge(&mut self, category: EnergyCategory, mj: f64) {
        self.charge_as(category, EnergyClass::of_category(category), self.phase, mj);
    }

    /// Charges `mj` millijoules to `category`, attributed to an explicit
    /// `(phase, class)` cell — the scan-aware receive paths use this to
    /// split [`EnergyCategory::Recv`] into its pricing classes.
    pub fn charge_as(
        &mut self,
        category: EnergyCategory,
        class: EnergyClass,
        phase: EnergyPhase,
        mj: f64,
    ) {
        debug_assert!(mj >= 0.0, "energy cannot be negative");
        self.mj[category.index()] += mj;
        self.counts[category.index()] += 1;
        self.attr.matrix[phase.index()][class.index()] += mj;
    }

    /// Sets the phase that subsequent untagged charges are attributed to.
    /// The runtime stamps this per actor invocation; protocol code never
    /// needs to call it.
    pub fn set_phase(&mut self, phase: EnergyPhase) {
        self.phase = phase;
    }

    /// The phase subsequent untagged charges are attributed to.
    pub fn phase(&self) -> EnergyPhase {
        self.phase
    }

    /// Snapshot of the per-(phase × class) attribution matrix.
    pub fn attribution(&self) -> &EnergyAttribution {
        &self.attr
    }

    /// Charges one signature generation under `scheme`.
    pub fn charge_sign(&mut self, scheme: SigScheme) {
        self.charge(EnergyCategory::Sign, scheme.sign_energy_j() * 1000.0);
    }

    /// Charges one signature verification under `scheme`.
    pub fn charge_verify(&mut self, scheme: SigScheme) {
        self.charge(EnergyCategory::Verify, scheme.verify_energy_j() * 1000.0);
    }

    /// Charges hashing `bytes` bytes.
    pub fn charge_hash(&mut self, bytes: usize) {
        self.charge(EnergyCategory::Hash, bytes as f64 * HASH_MJ_PER_BYTE);
    }

    /// Energy accumulated in `category`, mJ.
    pub fn mj(&self, category: EnergyCategory) -> f64 {
        self.mj[category.index()]
    }

    /// Operations counted in `category`.
    pub fn count(&self, category: EnergyCategory) -> u64 {
        self.counts[category.index()]
    }

    /// Total energy across all categories, mJ.
    pub fn total_mj(&self) -> f64 {
        self.mj.iter().sum()
    }

    /// Adds another meter's totals into this one (for aggregating a whole
    /// system's consumption).
    pub fn absorb(&mut self, other: &EnergyMeter) {
        for i in 0..self.mj.len() {
            self.mj[i] += other.mj[i];
            self.counts[i] += other.counts[i];
        }
        self.attr.absorb(&other.attr);
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Difference `self - baseline`, clamped at zero per category. Mirrors
    /// the paper's subtraction of sleep-state energy from measurements.
    pub fn since(&self, baseline: &EnergyMeter) -> EnergyMeter {
        let mut out = EnergyMeter::new();
        for i in 0..self.mj.len() {
            out.mj[i] = (self.mj[i] - baseline.mj[i]).max(0.0);
            out.counts[i] = self.counts[i].saturating_sub(baseline.counts[i]);
        }
        for p in 0..N_ENERGY_PHASE {
            for c in 0..N_ENERGY_CLASS {
                out.attr.matrix[p][c] =
                    (self.attr.matrix[p][c] - baseline.attr.matrix[p][c]).max(0.0);
            }
        }
        out
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} mJ (", self.total_mj())?;
        for (i, cat) in EnergyCategory::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{cat}: {:.2}", self.mj(*cat))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyCategory::Send, 1.5);
        m.charge(EnergyCategory::Send, 2.5);
        m.charge(EnergyCategory::Recv, 1.0);
        assert_eq!(m.mj(EnergyCategory::Send), 4.0);
        assert_eq!(m.count(EnergyCategory::Send), 2);
        assert_eq!(m.total_mj(), 5.0);
    }

    #[test]
    fn scheme_charges_use_table2() {
        let mut m = EnergyMeter::new();
        m.charge_sign(SigScheme::Rsa1024);
        assert_eq!(m.mj(EnergyCategory::Sign), 400.0);
        m.charge_verify(SigScheme::EcdsaBp256R1);
        assert_eq!(m.mj(EnergyCategory::Verify), 27_340.0);
    }

    #[test]
    fn hash_charge_is_linear_in_bytes() {
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        a.charge_hash(100);
        b.charge_hash(200);
        assert!((b.mj(EnergyCategory::Hash) - 2.0 * a.mj(EnergyCategory::Hash)).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_meters() {
        let mut a = EnergyMeter::new();
        a.charge(EnergyCategory::Send, 1.0);
        let mut b = EnergyMeter::new();
        b.charge(EnergyCategory::Send, 2.0);
        b.charge(EnergyCategory::Hash, 3.0);
        a.absorb(&b);
        assert_eq!(a.mj(EnergyCategory::Send), 3.0);
        assert_eq!(a.mj(EnergyCategory::Hash), 3.0);
        assert_eq!(a.count(EnergyCategory::Send), 2);
    }

    #[test]
    fn since_subtracts_baseline() {
        let mut base = EnergyMeter::new();
        base.charge(EnergyCategory::Send, 1.0);
        let mut now = base.clone();
        now.charge(EnergyCategory::Send, 4.0);
        now.charge(EnergyCategory::Sign, 2.0);
        let d = now.since(&base);
        assert_eq!(d.mj(EnergyCategory::Send), 4.0);
        assert_eq!(d.mj(EnergyCategory::Sign), 2.0);
        assert_eq!(d.count(EnergyCategory::Send), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyCategory::Verify, 9.0);
        m.reset();
        assert_eq!(m.total_mj(), 0.0);
        assert_eq!(m.count(EnergyCategory::Verify), 0);
    }

    #[test]
    fn display_includes_total_and_categories() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyCategory::Send, 1.25);
        let s = m.to_string();
        assert!(s.contains("1.25"));
        assert!(s.contains("send"));
    }

    #[test]
    fn attribution_classes_sum_exactly_to_category_totals() {
        // Every mJ charged lands in exactly one (phase, class) cell, so
        // the class marginals must recover the category ledger — the
        // "no double-charging" invariant the headline table relies on.
        let mut m = EnergyMeter::new();
        m.set_phase(EnergyPhase::Propose);
        m.charge_sign(SigScheme::Rsa1024);
        m.charge_hash(512);
        m.charge_as(EnergyCategory::Recv, EnergyClass::RecvScan, EnergyPhase::Propose, 7.5);
        m.set_phase(EnergyPhase::Vote);
        m.charge_verify(SigScheme::Rsa1024);
        m.charge(EnergyCategory::Send, 5.3);
        m.charge_as(EnergyCategory::Recv, EnergyClass::DupAbandoned, EnergyPhase::Vote, 0.4);
        m.charge_as(EnergyCategory::Recv, EnergyClass::SharedScan, EnergyPhase::Other, 1.1);

        let a = m.attribution();
        let recv_classes = a.class_mj(EnergyClass::RecvScan)
            + a.class_mj(EnergyClass::RecvDecode)
            + a.class_mj(EnergyClass::DupAbandoned)
            + a.class_mj(EnergyClass::SharedScan);
        assert!((recv_classes - m.mj(EnergyCategory::Recv)).abs() < 1e-9);
        assert!((a.class_mj(EnergyClass::Send) - m.mj(EnergyCategory::Send)).abs() < 1e-9);
        assert!((a.class_mj(EnergyClass::Sign) - m.mj(EnergyCategory::Sign)).abs() < 1e-9);
        assert!((a.class_mj(EnergyClass::Verify) - m.mj(EnergyCategory::Verify)).abs() < 1e-9);
        assert!((a.class_mj(EnergyClass::Hash) - m.mj(EnergyCategory::Hash)).abs() < 1e-9);
        assert!((a.total_mj() - m.total_mj()).abs() < 1e-9);
    }

    #[test]
    fn attribution_phases_follow_the_active_phase() {
        let mut m = EnergyMeter::new();
        m.set_phase(EnergyPhase::ViewChange);
        m.charge(EnergyCategory::Hash, 2.0);
        m.set_phase(EnergyPhase::Other);
        m.charge(EnergyCategory::Hash, 3.0);
        let a = m.attribution();
        assert_eq!(a.mj(EnergyPhase::ViewChange, EnergyClass::Hash), 2.0);
        assert_eq!(a.mj(EnergyPhase::Other, EnergyClass::Hash), 3.0);
        assert_eq!(a.phase_mj(EnergyPhase::ViewChange), 2.0);
    }

    #[test]
    fn attribution_survives_absorb_and_since() {
        let mut a = EnergyMeter::new();
        a.set_phase(EnergyPhase::Propose);
        a.charge(EnergyCategory::Send, 1.0);
        let snap = a.clone();
        let mut b = EnergyMeter::new();
        b.set_phase(EnergyPhase::Vote);
        b.charge(EnergyCategory::Send, 2.0);
        a.absorb(&b);
        assert_eq!(a.attribution().mj(EnergyPhase::Propose, EnergyClass::Send), 1.0);
        assert_eq!(a.attribution().mj(EnergyPhase::Vote, EnergyClass::Send), 2.0);
        let d = a.since(&snap);
        assert_eq!(d.attribution().mj(EnergyPhase::Propose, EnergyClass::Send), 0.0);
        assert_eq!(d.attribution().mj(EnergyPhase::Vote, EnergyClass::Send), 2.0);
    }
}
