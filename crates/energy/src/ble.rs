//! BLE advertisement k-cast reliability and energy model (paper §5.4,
//! Fig. 2a/2b).
//!
//! BLE advertisements carry at most 25 B of payload (GAP), are link-layer
//! packets with no loss handling, and are made reliable by *redundant
//! transmission*: every fragment is repeated `r` times. A k-cast succeeds
//! only if **all k receivers** get every fragment at least once.
//!
//! Calibration (documented in DESIGN.md §2): per-packet loss probability
//! `p = 0.2` per receiver and per-advertisement energies of ~0.757 mJ
//! (sender) / ~1.426 mJ (receiver) reproduce the paper's measured operating
//! point — 99.99 % reliability for `k = 7` at ≈5.3 mJ sender and ≈9.98 mJ
//! receiver energy per 25 B message (Fig. 2a).

use crate::medium::Medium;

/// Maximum advertisement payload per the BLE GAP specification (§5.4).
pub const ADV_PAYLOAD_BYTES: usize = 25;

/// Model of redundant-advertisement k-casts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BleKcastModel {
    /// Probability that one advertisement packet is lost at one receiver.
    pub packet_loss: f64,
    /// Sender energy per advertisement packet, mJ.
    pub adv_send_mj: f64,
    /// Receiver energy spent scanning per advertisement slot, mJ.
    pub adv_recv_mj: f64,
}

impl Default for BleKcastModel {
    /// Calibrated to the paper's Fig. 2a operating point.
    fn default() -> Self {
        BleKcastModel { packet_loss: 0.2, adv_send_mj: 5.3 / 7.0, adv_recv_mj: 9.98 / 7.0 }
    }
}

impl BleKcastModel {
    /// Number of 25-byte fragments needed for a `len`-byte message.
    pub fn fragments(len: usize) -> usize {
        len.div_ceil(ADV_PAYLOAD_BYTES).max(1)
    }

    /// Probability that a *single fragment* k-cast with redundancy `r`
    /// fails, i.e. at least one of the `k` receivers misses all `r` copies:
    /// `1 - (1 - p^r)^k`.
    pub fn fragment_failure_prob(&self, k: usize, redundancy: u32) -> f64 {
        let p_missed = self.packet_loss.powi(redundancy as i32);
        1.0 - (1.0 - p_missed).powi(k as i32)
    }

    /// Probability that a whole `len`-byte message k-cast fails (any
    /// fragment missed by any receiver).
    pub fn message_failure_prob(&self, len: usize, k: usize, redundancy: u32) -> f64 {
        let per_fragment_ok = 1.0 - self.fragment_failure_prob(k, redundancy);
        1.0 - per_fragment_ok.powi(Self::fragments(len) as i32)
    }

    /// The smallest redundancy factor whose *fragment* failure probability
    /// is at most `1 - reliability` (e.g. `reliability = 0.9999` for the
    /// paper's four-nines setting).
    ///
    /// # Panics
    ///
    /// Panics if `reliability` is not in `(0, 1)` or `packet_loss` is not
    /// in `(0, 1)`.
    pub fn redundancy_for(&self, k: usize, reliability: f64) -> u32 {
        assert!((0.0..1.0).contains(&reliability) && reliability > 0.0, "reliability in (0,1)");
        assert!(
            self.packet_loss > 0.0 && self.packet_loss < 1.0,
            "loss probability must be in (0,1)"
        );
        let mut r = 1u32;
        while self.fragment_failure_prob(k, r) > 1.0 - reliability {
            r += 1;
            assert!(r < 10_000, "unreachable reliability target");
        }
        r
    }

    /// Sender energy (mJ) for k-casting a `len`-byte message with
    /// redundancy `r`: every fragment transmitted `r` times.
    pub fn kcast_send_mj(&self, len: usize, redundancy: u32) -> f64 {
        Self::fragments(len) as f64 * redundancy as f64 * self.adv_send_mj
    }

    /// Per-receiver energy (mJ) spent scanning the `r`-redundant
    /// transmission of a `len`-byte message.
    pub fn kcast_recv_mj(&self, len: usize, redundancy: u32) -> f64 {
        Self::fragments(len) as f64 * redundancy as f64 * self.adv_recv_mj
    }

    /// Sender energy for a k-cast at a target reliability (picks the
    /// redundancy automatically).
    pub fn reliable_kcast_send_mj(&self, len: usize, k: usize, reliability: f64) -> f64 {
        self.kcast_send_mj(len, self.redundancy_for(k, reliability))
    }

    /// Per-receiver energy for a k-cast at a target reliability.
    pub fn reliable_kcast_recv_mj(&self, len: usize, k: usize, reliability: f64) -> f64 {
        self.kcast_recv_mj(len, self.redundancy_for(k, reliability))
    }
}

/// Model of BLE GATT unicasts (Fig. 2b's comparison arm).
///
/// GATT is connection-oriented and handles retransmission internally, so it
/// is reliable; the costs are the Table 1 BLE unicast columns plus a
/// per-message connection overhead. The paper notes the testbed boards
/// cannot hold concurrent GATT connections, so a `d_out`-neighbour transfer
/// pays the overhead once per neighbour, sequentially.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BleGattModel {
    /// Connection setup/teardown energy per message per link, mJ.
    pub connection_overhead_mj: f64,
}

impl Default for BleGattModel {
    fn default() -> Self {
        // Calibrated so the Fig. 2b crossover (unicast overtakes k-cast for
        // larger payloads) falls inside the plotted 100–500 B range.
        BleGattModel { connection_overhead_mj: 3.0 }
    }
}

impl BleGattModel {
    /// Sender energy (mJ) to deliver `len` bytes to `d_out` neighbours over
    /// sequential GATT connections.
    pub fn unicast_send_mj(&self, len: usize, d_out: usize) -> f64 {
        d_out as f64 * (self.connection_overhead_mj + Medium::Ble.send_mj(len))
    }

    /// Receiver energy (mJ) to accept `len` bytes over `d_in` GATT links.
    pub fn unicast_recv_mj(&self, len: usize, d_in: usize) -> f64 {
        d_in as f64 * (self.connection_overhead_mj + Medium::Ble.recv_mj(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_count_matches_gap_limit() {
        assert_eq!(BleKcastModel::fragments(1), 1);
        assert_eq!(BleKcastModel::fragments(25), 1);
        assert_eq!(BleKcastModel::fragments(26), 2);
        assert_eq!(BleKcastModel::fragments(256), 11);
        assert_eq!(BleKcastModel::fragments(0), 1, "empty messages still cost one packet");
    }

    #[test]
    fn paper_operating_point_k7_four_nines() {
        // Fig 2a: 99.99% at ~5.3 mJ sender / ~9.98 mJ receiver for k = 7.
        let m = BleKcastModel::default();
        let r = m.redundancy_for(7, 0.9999);
        assert_eq!(r, 7);
        let send = m.kcast_send_mj(25, r);
        let recv = m.kcast_recv_mj(25, r);
        assert!((send - 5.3).abs() < 0.05, "sender {send} mJ");
        assert!((recv - 9.98).abs() < 0.05, "receiver {recv} mJ");
    }

    #[test]
    fn failure_rate_decreases_exponentially_with_redundancy() {
        // Fig 2a: failure rates drop exponentially as redundancy (energy)
        // increases.
        let m = BleKcastModel::default();
        let f: Vec<f64> = (1..=8).map(|r| m.fragment_failure_prob(7, r)).collect();
        for w in f.windows(2) {
            assert!(w[1] < w[0] * 0.5, "at least halving per extra copy: {w:?}");
        }
    }

    #[test]
    fn higher_k_needs_more_energy_for_same_reliability() {
        // Fig 2a: failure probability increases with k, so the energy for
        // 99.99% grows with k.
        let m = BleKcastModel::default();
        let e1 = m.reliable_kcast_send_mj(25, 1, 0.9999);
        let e3 = m.reliable_kcast_send_mj(25, 3, 0.9999);
        let e7 = m.reliable_kcast_send_mj(25, 7, 0.9999);
        assert!(e1 <= e3 && e3 <= e7);
        assert!(
            m.fragment_failure_prob(7, 3) > m.fragment_failure_prob(3, 3)
                && m.fragment_failure_prob(3, 3) > m.fragment_failure_prob(1, 3)
        );
    }

    #[test]
    fn message_failure_accounts_for_fragments() {
        let m = BleKcastModel::default();
        let single = m.message_failure_prob(25, 3, 5);
        let multi = m.message_failure_prob(250, 3, 5);
        assert!(multi > single);
        // 10 fragments ≈ 10x the failure odds at small probabilities.
        assert!((multi / single - 10.0).abs() < 0.5);
    }

    #[test]
    fn redundancy_one_when_target_is_loose() {
        let m = BleKcastModel { packet_loss: 0.01, ..Default::default() };
        assert_eq!(m.redundancy_for(1, 0.9), 1);
    }

    #[test]
    #[should_panic(expected = "reliability in (0,1)")]
    fn reliability_must_be_a_probability() {
        let m = BleKcastModel::default();
        let _ = m.redundancy_for(3, 1.0);
    }

    #[test]
    fn unicast_scales_linearly_with_neighbours() {
        // Fig 2b: energy over equivalent unicasts grows linearly with k.
        let g = BleGattModel::default();
        let one = g.unicast_send_mj(300, 1);
        let seven = g.unicast_send_mj(300, 7);
        assert!((seven / one - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fig2b_crossover_unicast_wins_for_large_payloads() {
        // Fig 2b: for d_out = 1 the unicast is cheaper than a k=7 k-cast at
        // large payloads, while the k-cast is competitive at k=7 unicast
        // fan-out for small payloads.
        let kc = BleKcastModel::default();
        let g = BleGattModel::default();
        let payload = 500;
        assert!(g.unicast_send_mj(payload, 1) < kc.reliable_kcast_send_mj(payload, 7, 0.9999));
        let small = 25;
        assert!(kc.reliable_kcast_send_mj(small, 7, 0.9999) < g.unicast_send_mj(small, 7));
    }
}
