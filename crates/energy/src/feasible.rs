//! Feasible-region analysis (paper Fig. 1).
//!
//! Evaluates `ψ^EESMR_B − ψ^Baseline` over a grid of node counts `n` and
//! payload sizes `m`. Negative cells are the region where running EESMR
//! among the CPS nodes (over WiFi in the paper's example) consumes less
//! energy than shipping everything to an external trusted node (over 4G).

use crate::psi::{PsiParams, PsiProtocol};

/// One cell of the feasible-region grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibleCell {
    /// Node count.
    pub n: usize,
    /// Payload bytes.
    pub payload: usize,
    /// ψ^EESMR_B in mJ.
    pub eesmr_mj: f64,
    /// ψ^Baseline in mJ.
    pub baseline_mj: f64,
    /// `eesmr_mj - baseline_mj`; negative ⇒ EESMR is more energy-efficient.
    pub delta_mj: f64,
}

impl FeasibleCell {
    /// Whether EESMR is the better choice in this cell.
    pub fn eesmr_favoured(&self) -> bool {
        self.delta_mj < 0.0
    }
}

/// The full grid, row-major over `n` then `payload`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibleRegion {
    cells: Vec<FeasibleCell>,
    n_values: Vec<usize>,
    payload_values: Vec<usize>,
}

impl FeasibleRegion {
    /// Computes the region with the paper's Fig. 1 setting (RSA-1024,
    /// WiFi node links, 4G trusted link) via [`PsiParams::fig1`].
    pub fn compute(n_values: &[usize], payload_values: &[usize]) -> Self {
        Self::compute_with(n_values, payload_values, PsiParams::fig1)
    }

    /// Computes the region with custom parameters per `(n, payload)`.
    pub fn compute_with(
        n_values: &[usize],
        payload_values: &[usize],
        make_params: impl Fn(usize, usize) -> PsiParams,
    ) -> Self {
        let mut cells = Vec::with_capacity(n_values.len() * payload_values.len());
        for &n in n_values {
            for &m in payload_values {
                let p = make_params(n, m);
                let eesmr = PsiProtocol::Eesmr.psi_best(&p).total_mj();
                let baseline = PsiProtocol::TrustedBaseline.psi_best(&p).total_mj();
                cells.push(FeasibleCell {
                    n,
                    payload: m,
                    eesmr_mj: eesmr,
                    baseline_mj: baseline,
                    delta_mj: eesmr - baseline,
                });
            }
        }
        FeasibleRegion {
            cells,
            n_values: n_values.to_vec(),
            payload_values: payload_values.to_vec(),
        }
    }

    /// Reassembles a region from row-major cells (`n` outer, `payload`
    /// inner) — the inverse of [`cells`](Self::cells), for callers that
    /// compute the per-`n` rows in parallel and still want the region's
    /// analysis methods.
    ///
    /// # Panics
    ///
    /// Panics if the cell count is not `n_values × payload_values`.
    pub fn from_rows(
        n_values: &[usize],
        payload_values: &[usize],
        cells: Vec<FeasibleCell>,
    ) -> Self {
        assert_eq!(
            cells.len(),
            n_values.len() * payload_values.len(),
            "cells must cover the full n × payload grid"
        );
        FeasibleRegion {
            cells,
            n_values: n_values.to_vec(),
            payload_values: payload_values.to_vec(),
        }
    }

    /// All cells, row-major (`n` outer, `payload` inner).
    pub fn cells(&self) -> &[FeasibleCell] {
        &self.cells
    }

    /// The `n` axis values.
    pub fn n_values(&self) -> &[usize] {
        &self.n_values
    }

    /// The payload axis values.
    pub fn payload_values(&self) -> &[usize] {
        &self.payload_values
    }

    /// The cell at `(n, payload)` if both values are on the grid axes.
    pub fn cell(&self, n: usize, payload: usize) -> Option<&FeasibleCell> {
        let ni = self.n_values.iter().position(|&v| v == n)?;
        let mi = self.payload_values.iter().position(|&v| v == payload)?;
        self.cells.get(ni * self.payload_values.len() + mi)
    }

    /// Fraction of the grid where EESMR is favoured.
    pub fn favoured_fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| c.eesmr_favoured()).count() as f64 / self.cells.len() as f64
    }

    /// For each payload, the largest `n` (on the grid) at which EESMR is
    /// still favoured, if any — the crossover frontier of Fig. 1.
    pub fn crossover_frontier(&self) -> Vec<(usize, Option<usize>)> {
        self.payload_values
            .iter()
            .map(|&m| {
                let best_n = self
                    .n_values
                    .iter()
                    .copied()
                    .filter(|&n| self.cell(n, m).is_some_and(FeasibleCell::eesmr_favoured))
                    .max();
                (m, best_n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FeasibleRegion {
        FeasibleRegion::compute(&[4, 6, 8, 10, 12, 16], &[64, 256, 1024, 2048])
    }

    #[test]
    fn grid_has_all_cells() {
        let g = grid();
        assert_eq!(g.cells().len(), 24);
        assert!(g.cell(4, 64).is_some());
        assert!(g.cell(5, 64).is_none(), "off-grid n");
        assert!(g.cell(4, 100).is_none(), "off-grid payload");
    }

    #[test]
    fn region_has_both_signs() {
        // Fig. 1 shows a surface crossing zero.
        let g = grid();
        assert!(g.favoured_fraction() > 0.0, "some cells favour EESMR");
        assert!(g.favoured_fraction() < 1.0, "some cells favour the baseline");
    }

    #[test]
    fn small_n_favours_eesmr() {
        let g = grid();
        assert!(g.cell(4, 1024).unwrap().eesmr_favoured());
        assert!(!g.cell(16, 1024).unwrap().eesmr_favoured());
    }

    #[test]
    fn delta_is_consistent() {
        let g = grid();
        for c in g.cells() {
            assert!((c.delta_mj - (c.eesmr_mj - c.baseline_mj)).abs() < 1e-9);
            assert!(c.eesmr_mj > 0.0 && c.baseline_mj > 0.0);
        }
    }

    #[test]
    fn frontier_reports_each_payload() {
        let g = grid();
        let frontier = g.crossover_frontier();
        assert_eq!(frontier.len(), 4);
        for (_, crossover) in &frontier {
            // At n = 4 EESMR wins for every payload in this grid, so a
            // crossover exists everywhere.
            assert!(crossover.is_some());
        }
    }
}
