//! Closed-form protocol energy models — the paper's ψ functions (§4).
//!
//! §4 models the energy cost of a protocol per unit of consensus as a
//! function `ψ(X)` of system parameters `X = (n, f, m, S, R, σ_s, σ_v)`:
//! node count, fault bound, payload size, per-byte send/receive costs, and
//! signing/verification costs. `ψ_B` is the best-case (fault-free) cost,
//! `ψ_V = ψ_W − ψ_B` the extra cost of a view change.
//!
//! The models here count *operations* (signatures, verifications, hashed
//! bytes, flooded messages) exactly as the protocol descriptions dictate
//! and price them with the Table 1/Table 2 constants. They drive the
//! Fig. 1 feasible-region analysis and the ν_f / f_e bounds.

use eesmr_crypto::SigScheme;

use crate::medium::Medium;
use crate::meter::HASH_MJ_PER_BYTE;

/// System parameters `X` for the ψ functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsiParams {
    /// Total nodes `n`.
    pub n: usize,
    /// Fault bound `f < n/2`.
    pub f: usize,
    /// Payload bytes `m` per consensus unit (the size of `Cmds`).
    pub payload: usize,
    /// Flooding out-degree `d`: neighbours each node relays to.
    pub d: usize,
    /// Signature scheme (prices σ_s, σ_v and signature sizes).
    pub scheme: SigScheme,
    /// Medium for inter-node links.
    pub node_medium: Medium,
    /// Medium for reaching the external trusted node (baseline only).
    pub trusted_medium: Medium,
    /// Fixed per-message header bytes (type, view, round, ids).
    pub header_bytes: usize,
}

impl PsiParams {
    /// Parameters for the paper's Fig. 1 setting: RSA-1024, WiFi between
    /// nodes, 4G to the trusted node, fully connected flooding.
    pub fn fig1(n: usize, payload: usize) -> Self {
        PsiParams {
            n,
            f: (n - 1) / 2,
            payload,
            d: n - 1,
            scheme: SigScheme::Rsa1024,
            node_medium: Medium::Wifi,
            trusted_medium: Medium::FourG,
            header_bytes: 16,
        }
    }

    fn sig(&self) -> usize {
        self.scheme.signature_size()
    }

    /// Size of a steady-state proposal: header ‖ parent hash ‖ Cmds ‖ σ_L.
    pub fn proposal_size(&self) -> usize {
        self.header_bytes + 32 + self.payload + self.sig()
    }

    /// Size of a vote/blame-style message: header ‖ hash ‖ σ.
    pub fn vote_size(&self) -> usize {
        self.header_bytes + 32 + self.sig()
    }

    /// Size of a quorum certificate of `t` signatures.
    pub fn qc_size(&self, t: usize) -> usize {
        self.header_bytes + 32 + t * self.sig()
    }
}

/// An operation-count and energy breakdown of one ψ evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PsiBreakdown {
    /// Signature generations.
    pub signs: u64,
    /// Signature verifications.
    pub verifies: u64,
    /// Bytes hashed.
    pub hash_bytes: u64,
    /// Point-to-point transmissions (flood hops count individually).
    pub transmissions: u64,
    /// Transmission energy, mJ.
    pub send_mj: f64,
    /// Reception energy, mJ.
    pub recv_mj: f64,
    /// Signing energy, mJ.
    pub sign_mj: f64,
    /// Verification energy, mJ.
    pub verify_mj: f64,
    /// Hashing energy, mJ.
    pub hash_mj: f64,
}

impl PsiBreakdown {
    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.send_mj + self.recv_mj + self.sign_mj + self.verify_mj + self.hash_mj
    }

    fn add_signs(&mut self, count: u64, scheme: SigScheme) {
        self.signs += count;
        self.sign_mj += count as f64 * scheme.sign_energy_j() * 1000.0;
    }

    fn add_verifies(&mut self, count: u64, scheme: SigScheme) {
        self.verifies += count;
        self.verify_mj += count as f64 * scheme.verify_energy_j() * 1000.0;
    }

    fn add_hash(&mut self, bytes: u64) {
        self.hash_bytes += bytes;
        self.hash_mj += bytes as f64 * HASH_MJ_PER_BYTE;
    }

    /// One message of `size` flooded through the whole system: with
    /// relay-once semantics over a `d`-regular graph, every node transmits
    /// the message once to its `d` out-neighbours and every copy is
    /// received once — `n·d` sends and receives.
    fn add_flood(&mut self, p: &PsiParams, size: usize) {
        let hops = (p.n * p.d) as u64;
        self.transmissions += hops;
        self.send_mj += hops as f64 * p.node_medium.send_mj(size);
        self.recv_mj += hops as f64 * p.node_medium.recv_mj(size);
    }

    /// A direct exchange with the trusted node over the expensive medium.
    fn add_trusted_roundtrip(&mut self, p: &PsiParams, up: usize, down: usize) {
        self.transmissions += 2;
        self.send_mj += p.trusted_medium.send_mj(up);
        // The trusted node itself is externally powered; only the CPS
        // node's receive cost for the downlink is charged.
        self.recv_mj += p.trusted_medium.recv_mj(down);
    }
}

/// Protocols modelled by §4 and §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PsiProtocol {
    /// This paper's protocol.
    Eesmr,
    /// Sync HotStuff (Abraham et al., S&P 2020).
    SyncHotStuff,
    /// OptSync (Shrestha et al., CCS 2020).
    OptSync,
    /// The trusted-control-node baseline of §5.1.
    TrustedBaseline,
}

impl PsiProtocol {
    /// Best-case (fault-free) cost ψ_B per consensus unit, summed over all
    /// CPS nodes.
    pub fn psi_best(self, p: &PsiParams) -> PsiBreakdown {
        let mut b = PsiBreakdown::default();
        let scheme = p.scheme;
        let n = p.n as u64;
        match self {
            PsiProtocol::Eesmr => {
                // Leader signs once; proposal floods; every node verifies
                // the single leader signature and hashes the proposal.
                b.add_signs(1, scheme);
                b.add_flood(p, p.proposal_size());
                b.add_verifies(n, scheme);
                b.add_hash(n * p.proposal_size() as u64);
            }
            PsiProtocol::SyncHotStuff => {
                // Proposal carries a certificate of n/2+1 vote signatures;
                // every node votes (sign + flood) and verifies the
                // proposal, its certificate, and the votes of its own
                // certificate.
                let q = (p.n / 2 + 1) as u64;
                let prop = p.proposal_size() + p.qc_size(q as usize);
                b.add_signs(1 + n, scheme);
                b.add_flood(p, prop);
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(n * (1 + 2 * q), scheme);
                b.add_hash(n * prop as u64);
            }
            PsiProtocol::OptSync => {
                // Same pattern; the responsive path needs 3n/4+1 votes.
                let q = (3 * p.n / 4 + 1) as u64;
                let prop = p.proposal_size() + p.qc_size(q as usize);
                b.add_signs(1 + n, scheme);
                b.add_flood(p, prop);
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(n * (1 + 2 * q), scheme);
                b.add_hash(n * prop as u64);
            }
            PsiProtocol::TrustedBaseline => {
                // Every node uploads its m-byte state to the trusted node
                // and downloads the ordered block, all over the expensive
                // medium; one signature each way per node.
                let up = p.header_bytes + p.payload + p.sig();
                let down = p.proposal_size();
                b.add_signs(n, scheme);
                b.add_verifies(n, scheme);
                for _ in 0..p.n {
                    b.add_trusted_roundtrip(p, up, down);
                }
                b.add_hash(n * down as u64);
            }
        }
        b
    }

    /// View-change cost ψ_V (the extra energy of one leader change;
    /// ψ_W = ψ_B + ψ_V).
    pub fn psi_view_change(self, p: &PsiParams) -> PsiBreakdown {
        let mut b = PsiBreakdown::default();
        let scheme = p.scheme;
        let n = p.n as u64;
        let fq = (p.f + 1) as u64; // quorum f+1
        match self {
            PsiProtocol::Eesmr => {
                // Blames: n signed blames flood; each node verifies f+1.
                b.add_signs(n, scheme);
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(n * fq, scheme);
                // Blame QC floods; all verify its f+1 signatures.
                b.add_flood(p, p.qc_size(p.f + 1));
                b.add_verifies(n * fq, scheme);
                // CommitUpdate: every node floods its B_com; every node
                // verifies the updates it certifies (up to n each).
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(n * n, scheme);
                // Certify: converting the votes-in-the-head to explicit
                // votes — each node signs once (common B_com case) and
                // floods; f+1 verifications per node to form commit QCs.
                b.add_signs(n, scheme);
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(n * fq, scheme);
                // Commit QC broadcast + status to the new leader.
                for _ in 0..p.n {
                    b.add_flood(p, p.qc_size(p.f + 1));
                }
                b.add_verifies(n * fq, scheme);
                // NewViewProposal with f+1 certificates; everyone verifies
                // the f+1 embedded QCs (f+1 signatures each).
                b.add_flood(p, p.header_bytes + (p.f + 1) * p.qc_size(p.f + 1));
                b.add_verifies(n * fq * fq, scheme);
                // Round-1 votes and the round-2 proposal with the vote QC.
                b.add_signs(n, scheme);
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(fq, scheme);
                b.add_flood(p, p.proposal_size() + p.qc_size(p.f + 1));
                b.add_verifies(n * fq, scheme);
                b.add_hash(n * p.qc_size(p.f + 1) as u64);
            }
            PsiProtocol::SyncHotStuff | PsiProtocol::OptSync => {
                // Blames flood and are verified.
                b.add_signs(n, scheme);
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(n * fq, scheme);
                // Status: each node sends its highest certificate (already
                // explicit — no extra signing) to the new leader.
                let cert = p.qc_size(p.n / 2 + 1);
                for _ in 0..p.n {
                    b.add_flood(p, cert);
                }
                b.add_verifies(n * (p.n / 2 + 1) as u64, scheme);
                // New-view proposal with the highest certificate + votes.
                b.add_flood(p, p.proposal_size() + cert);
                b.add_signs(n, scheme);
                for _ in 0..p.n {
                    b.add_flood(p, p.vote_size());
                }
                b.add_verifies(n * (p.n / 2 + 1) as u64, scheme);
                b.add_hash(n * cert as u64);
            }
            PsiProtocol::TrustedBaseline => {
                // The trusted node cannot fail; a "view change" is free.
            }
        }
        b
    }

    /// Worst-case cost ψ_W = ψ_B + ψ_V.
    pub fn psi_worst(self, p: &PsiParams) -> f64 {
        self.psi_best(p).total_mj() + self.psi_view_change(p).total_mj()
    }
}

/// The break-even view-change ratio ν_f between a candidate protocol and a
/// reference (§4): the candidate is the better choice while the fraction of
/// consensus units that suffer a view change stays below
/// `ν_f = (ψ*_B − ψ_B) / (ψ_V − ψ*_V)`.
///
/// Returns `None` when the candidate is never better (worse best case and
/// worse view change) or the ratio is unbounded (better in both regimes —
/// the candidate always wins).
pub fn break_even_nu(
    candidate_best: f64,
    candidate_vc: f64,
    reference_best: f64,
    reference_vc: f64,
) -> Option<f64> {
    let num = reference_best - candidate_best;
    let den = candidate_vc - reference_vc;
    if num >= 0.0 && den <= 0.0 {
        None // candidate dominates; any ν works
    } else if num <= 0.0 && den >= 0.0 {
        Some(0.0) // reference dominates
    } else if den > 0.0 {
        Some((num / den).clamp(0.0, 1.0))
    } else {
        None
    }
}

/// The energy-fault bound f_e of equation (EB): the number of adversarial
/// worst-case events EESMR can absorb and still beat a protocol whose
/// per-unit cost is `psi_other`, given EESMR's best-case and view-change
/// costs: `f_e ≤ (ψ_other − ψ_B) / (ψ_B + ψ_V)`.
pub fn energy_fault_bound(psi_other: f64, eesmr_best: f64, eesmr_vc: f64) -> f64 {
    ((psi_other - eesmr_best) / (eesmr_best + eesmr_vc)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, m: usize, d: usize) -> PsiParams {
        PsiParams {
            n,
            f: (n - 1) / 2,
            payload: m,
            d,
            scheme: SigScheme::Rsa1024,
            node_medium: Medium::Ble,
            trusted_medium: Medium::FourG,
            header_bytes: 16,
        }
    }

    #[test]
    fn eesmr_best_uses_one_signature() {
        let b = PsiProtocol::Eesmr.psi_best(&params(10, 128, 3));
        assert_eq!(b.signs, 1, "O(1) signing per committed block (§3.3)");
        assert_eq!(b.verifies, 10, "each node verifies the leader once");
    }

    #[test]
    fn synchs_best_signs_linearly() {
        let b = PsiProtocol::SyncHotStuff.psi_best(&params(10, 128, 3));
        assert_eq!(b.signs, 11, "leader + one vote per node");
        // Verify count is Θ(n²) system-wide.
        assert_eq!(b.verifies, 10 * (1 + 2 * 6));
    }

    #[test]
    fn eesmr_comm_is_linear_in_n_synchs_quadratic() {
        // Table 3: EESMR O(nd) vs Sync HotStuff O(n²d) best-case.
        let t_e_10 = PsiProtocol::Eesmr.psi_best(&params(10, 64, 3)).transmissions;
        let t_e_20 = PsiProtocol::Eesmr.psi_best(&params(20, 64, 3)).transmissions;
        assert_eq!(t_e_20, 2 * t_e_10, "EESMR transmissions scale linearly");

        let t_s_10 = PsiProtocol::SyncHotStuff.psi_best(&params(10, 64, 3)).transmissions;
        let t_s_20 = PsiProtocol::SyncHotStuff.psi_best(&params(20, 64, 3)).transmissions;
        assert!(t_s_20 as f64 / t_s_10 as f64 > 3.5, "SyncHS transmissions scale ~quadratically");
    }

    #[test]
    fn eesmr_beats_synchs_in_best_case() {
        let p = params(10, 64, 3);
        let e = PsiProtocol::Eesmr.psi_best(&p).total_mj();
        let s = PsiProtocol::SyncHotStuff.psi_best(&p).total_mj();
        assert!(e < s, "EESMR {e} must beat SyncHS {s} in steady state");
    }

    #[test]
    fn eesmr_view_change_costs_more_than_synchs() {
        // The paper's trade-off: EESMR pushes work to the view change.
        let p = params(10, 64, 3);
        let e = PsiProtocol::Eesmr.psi_view_change(&p).total_mj();
        let s = PsiProtocol::SyncHotStuff.psi_view_change(&p).total_mj();
        assert!(e > s, "EESMR VC {e} should exceed SyncHS VC {s}");
    }

    #[test]
    fn optsync_verifies_more_than_synchs() {
        let p = params(12, 64, 3);
        let o = PsiProtocol::OptSync.psi_best(&p);
        let s = PsiProtocol::SyncHotStuff.psi_best(&p);
        assert!(o.verifies > s.verifies, "3n/4+1 vs n/2+1 quorums");
        assert!(o.total_mj() > s.total_mj());
    }

    #[test]
    fn baseline_has_free_view_change() {
        let p = params(8, 64, 3);
        assert_eq!(PsiProtocol::TrustedBaseline.psi_view_change(&p).total_mj(), 0.0);
    }

    #[test]
    fn psi_worst_is_best_plus_vc() {
        let p = params(9, 32, 2);
        for proto in [PsiProtocol::Eesmr, PsiProtocol::SyncHotStuff, PsiProtocol::OptSync] {
            let w = proto.psi_worst(&p);
            let b = proto.psi_best(&p).total_mj();
            let v = proto.psi_view_change(&p).total_mj();
            assert!((w - (b + v)).abs() < 1e-9);
        }
    }

    #[test]
    fn break_even_regimes() {
        // Candidate better best-case, worse VC: finite positive ν.
        let nu = break_even_nu(10.0, 50.0, 20.0, 30.0).unwrap();
        assert!((nu - 0.5).abs() < 1e-12);
        // Candidate dominates: None (always better).
        assert_eq!(break_even_nu(10.0, 20.0, 20.0, 30.0), None);
        // Reference dominates: Some(0).
        assert_eq!(break_even_nu(20.0, 50.0, 10.0, 30.0), Some(0.0));
    }

    #[test]
    fn energy_fault_bound_matches_eb_equation() {
        // f_e ≤ (ψ_BL − ψ_B) / (ψ_B + ψ_V)
        assert!((energy_fault_bound(110.0, 10.0, 40.0) - 2.0).abs() < 1e-12);
        assert_eq!(energy_fault_bound(5.0, 10.0, 40.0), 0.0, "clamped at zero");
    }

    #[test]
    fn fig1_params_are_paper_setting() {
        let p = PsiParams::fig1(10, 512);
        assert_eq!(p.scheme, SigScheme::Rsa1024);
        assert_eq!(p.node_medium, Medium::Wifi);
        assert_eq!(p.trusted_medium, Medium::FourG);
        assert_eq!(p.d, 9);
    }

    #[test]
    fn fig1_crossover_exists_in_n() {
        // Small systems favour EESMR, large ones the 4G baseline — the
        // feasible region of Fig. 1 has both signs.
        let small = PsiParams::fig1(4, 1024);
        let large = PsiParams::fig1(16, 1024);
        let d_small = PsiProtocol::Eesmr.psi_best(&small).total_mj()
            - PsiProtocol::TrustedBaseline.psi_best(&small).total_mj();
        let d_large = PsiProtocol::Eesmr.psi_best(&large).total_mj()
            - PsiProtocol::TrustedBaseline.psi_best(&large).total_mj();
        assert!(d_small < 0.0, "EESMR should win at n=4 ({d_small})");
        assert!(d_large > 0.0, "baseline should win at n=16 ({d_large})");
    }
}
