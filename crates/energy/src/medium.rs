//! Communication media and their measured energy costs (paper Table 1).
//!
//! The paper measures the energy to send and receive messages of
//! 256 B – 2 kB over BLE, 4G LTE, and WiFi on the CPS testbed. Those
//! measurements are the anchor points here; costs for other sizes are
//! linearly interpolated between anchors (and proportionally scaled below /
//! linearly extrapolated above), which matches the paper's observation that
//! costs grow linearly with message size.

use core::fmt;

/// A communication medium from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Medium {
    /// Bluetooth Low Energy. Unicast = GATT connections; multicast =
    /// advertisement-based k-casts (see [`crate::ble`] for the reliability
    /// model layered on top).
    Ble,
    /// 4G LTE — the "expensive" medium used to reach an external trusted
    /// node in the baseline protocol.
    FourG,
    /// WiFi — the medium assumed for inter-node links in the Fig. 1
    /// feasible-region analysis.
    Wifi,
}

impl fmt::Display for Medium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Medium::Ble => "BLE",
            Medium::FourG => "4G LTE",
            Medium::Wifi => "WiFi",
        })
    }
}

/// Message sizes (bytes) at which Table 1 anchors the measurements.
pub const ANCHOR_SIZES: [usize; 4] = [256, 512, 1024, 2048];

/// Table 1 rows, in mJ, indexed to match [`ANCHOR_SIZES`].
mod table1 {
    pub const BLE_SEND: [f64; 4] = [0.73, 1.31, 2.93, 5.91];
    pub const BLE_RECV: [f64; 4] = [0.55, 1.11, 2.64, 5.23];
    pub const BLE_MULTICAST: [f64; 4] = [0.58, 1.17, 2.35, 4.70];
    pub const FOURG_SEND: [f64; 4] = [494.84, 989.68, 1979.36, 3958.72];
    pub const FOURG_RECV: [f64; 4] = [69.54, 139.08, 278.17, 556.35];
    pub const WIFI_SEND: [f64; 4] = [81.2, 153.98, 310.54, 610.55];
    pub const WIFI_RECV: [f64; 4] = [66.66, 123.23, 231.52, 423.58];
}

/// Piecewise-linear evaluation over the Table 1 anchors.
fn interpolate(anchors: &[f64; 4], bytes: usize) -> f64 {
    let b = bytes as f64;
    let first = ANCHOR_SIZES[0] as f64;
    if b <= first {
        // Proportional below the first anchor (cost →0 with size).
        return anchors[0] * b / first;
    }
    for w in 0..ANCHOR_SIZES.len() - 1 {
        let (x0, x1) = (ANCHOR_SIZES[w] as f64, ANCHOR_SIZES[w + 1] as f64);
        if b <= x1 {
            let t = (b - x0) / (x1 - x0);
            return anchors[w] + t * (anchors[w + 1] - anchors[w]);
        }
    }
    // Extrapolate with the slope of the last segment.
    let (x0, x1) = (ANCHOR_SIZES[2] as f64, ANCHOR_SIZES[3] as f64);
    let slope = (anchors[3] - anchors[2]) / (x1 - x0);
    anchors[3] + (b - x1) * slope
}

impl Medium {
    /// Energy (mJ) for a unicast *send* of `bytes`.
    pub fn send_mj(self, bytes: usize) -> f64 {
        match self {
            Medium::Ble => interpolate(&table1::BLE_SEND, bytes),
            Medium::FourG => interpolate(&table1::FOURG_SEND, bytes),
            Medium::Wifi => interpolate(&table1::WIFI_SEND, bytes),
        }
    }

    /// Energy (mJ) for a unicast *receive* of `bytes`.
    pub fn recv_mj(self, bytes: usize) -> f64 {
        match self {
            Medium::Ble => interpolate(&table1::BLE_RECV, bytes),
            Medium::FourG => interpolate(&table1::FOURG_RECV, bytes),
            Medium::Wifi => interpolate(&table1::WIFI_RECV, bytes),
        }
    }

    /// Energy (mJ) for a *multicast send* of `bytes` — one transmission
    /// heard by all receivers in range. Only BLE has a separately measured
    /// multicast path in Table 1; for the other media a multicast costs the
    /// same as a send (radio broadcast).
    ///
    /// Note: this is the raw link-layer cost, *without* the redundancy
    /// needed for reliability — see [`crate::ble::BleKcastModel`] for the
    /// reliable-k-cast cost used by the protocol experiments.
    pub fn multicast_send_mj(self, bytes: usize) -> f64 {
        match self {
            Medium::Ble => interpolate(&table1::BLE_MULTICAST, bytes),
            other => other.send_mj(bytes),
        }
    }

    /// All media, in Table 1 column order.
    pub const ALL: [Medium; 3] = [Medium::Ble, Medium::FourG, Medium::Wifi];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_table1_exactly() {
        assert_eq!(Medium::Ble.send_mj(256), 0.73);
        assert_eq!(Medium::Ble.recv_mj(512), 1.11);
        assert_eq!(Medium::Ble.multicast_send_mj(1024), 2.35);
        assert_eq!(Medium::FourG.send_mj(256), 494.84);
        assert_eq!(Medium::FourG.recv_mj(2048), 556.35);
        assert_eq!(Medium::Wifi.send_mj(1024), 310.54);
        assert_eq!(Medium::Wifi.recv_mj(256), 66.66);
    }

    #[test]
    fn interpolation_is_monotone_in_size() {
        for m in Medium::ALL {
            let mut prev = 0.0;
            for bytes in (0..4096).step_by(64) {
                let c = m.send_mj(bytes);
                assert!(c >= prev, "{m} send not monotone at {bytes}");
                prev = c;
            }
        }
    }

    #[test]
    fn midpoint_interpolates_between_anchors() {
        let mid = Medium::Ble.send_mj(384); // halfway 256..512
        assert!((mid - (0.73 + 1.31) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn below_first_anchor_scales_proportionally() {
        let half = Medium::Ble.send_mj(128);
        assert!((half - 0.73 / 2.0).abs() < 1e-9);
        assert_eq!(Medium::Wifi.send_mj(0), 0.0);
    }

    #[test]
    fn extrapolation_beyond_2kb_continues_last_slope() {
        let at_4k = Medium::Ble.send_mj(4096);
        let slope = (5.91 - 2.93) / 1024.0;
        assert!((at_4k - (5.91 + 2048.0 * slope)).abs() < 1e-9);
    }

    #[test]
    fn fourg_is_most_expensive_to_send() {
        for bytes in [256, 1024, 2048] {
            assert!(Medium::FourG.send_mj(bytes) > Medium::Wifi.send_mj(bytes));
            assert!(Medium::Wifi.send_mj(bytes) > Medium::Ble.send_mj(bytes));
        }
    }

    #[test]
    fn ble_orders_of_magnitude_cheaper() {
        // §5.4: BLE is two orders of magnitude below WiFi, three below 4G.
        let ble = Medium::Ble.send_mj(256);
        assert!(Medium::Wifi.send_mj(256) / ble > 50.0);
        assert!(Medium::FourG.send_mj(256) / ble > 500.0);
    }

    #[test]
    fn non_ble_multicast_falls_back_to_send() {
        assert_eq!(Medium::Wifi.multicast_send_mj(512), Medium::Wifi.send_mj(512));
        assert_eq!(Medium::FourG.multicast_send_mj(512), Medium::FourG.send_mj(512));
    }
}
