//! Property tests for the hypergraph model.

use eesmr_hypergraph::topology::{complete, random_kcast, ring_kcast};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// make_independent never loses coverage and is idempotent.
    #[test]
    fn make_independent_preserves_coverage(n in 4usize..12, k_raw in 1usize..6,
                                           d_out in 1usize..4, seed in 0u64..500) {
        let k = 1 + k_raw % (n - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_kcast(n, k, d_out, &mut rng);
        // Coverage per node before/after is preserved by construction
        // (random_kcast already calls make_independent) — re-running must
        // be a no-op.
        let mut again = h.clone();
        again.make_independent();
        prop_assert_eq!(h.edges().len(), again.edges().len(), "idempotent");
        prop_assert!(h.is_independent());
    }

    /// hop_distances and reachable_from agree.
    #[test]
    fn distances_agree_with_reachability(n in 3usize..12, k_raw in 1usize..6, start in 0u32..12) {
        let k = 1 + k_raw % (n - 1);
        let h = ring_kcast(n, k);
        let start = start % n as u32;
        let reach = h.reachable_from(start, &BTreeSet::new());
        let dist = h.hop_distances(start);
        for p in 0..n as u32 {
            prop_assert_eq!(reach.contains(&p), dist[p as usize].is_some(), "node {}", p);
        }
    }

    /// Degrees never exceed n−1 and Lemma A.6 never exceeds Lemma A.5's
    /// distinct-node form.
    #[test]
    fn degree_bounds(n in 3usize..12, k_raw in 1usize..6, d_out in 1usize..4, seed in 0u64..500) {
        let k = 1 + k_raw % (n - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_kcast(n, k, d_out, &mut rng);
        for p in 0..n as u32 {
            prop_assert!(h.d_out(p) < n);
            prop_assert!(h.d_in(p) < n);
        }
        prop_assert!(h.necessary_fault_bound() <= n - 2);
    }

    /// The complete multicast topology is maximally fault tolerant.
    #[test]
    fn complete_tolerates_all_minorities(n in 3usize..8) {
        let h = complete(n);
        prop_assert_eq!(h.necessary_fault_bound(), n - 2);
        prop_assert!(h.is_partition_resistant(n - 2));
    }
}
