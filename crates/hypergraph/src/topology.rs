//! Topology builders used by the paper's experiments.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Hypergraph, NodeId};

/// The paper's testbed topology (§5.6): node `p_i` transmits one k-cast to
/// `p_{i+1 mod n}, …, p_{i+k mod n}`, so every node has `D_out = 1`
/// outgoing k-cast and `D_in = k` incoming links.
///
/// # Panics
///
/// Panics if `k == 0` or `k >= n`.
pub fn ring_kcast(n: usize, k: usize) -> Hypergraph {
    assert!(k > 0, "k-cast degree must be positive");
    assert!(k < n, "k must leave at least one non-receiver (no self-loops)");
    let mut h = Hypergraph::new(n);
    for i in 0..n {
        let receivers: Vec<NodeId> = (1..=k).map(|j| ((i + j) % n) as NodeId).collect();
        h.add_edge(i as NodeId, receivers).expect("ring edges are valid by construction");
    }
    h
}

/// Fully connected topology realised with a single `(n-1)`-cast per node —
/// the "wireless broadcast domain" setting.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Hypergraph {
    assert!(n >= 2, "complete topology needs at least two nodes");
    let mut h = Hypergraph::new(n);
    for i in 0..n {
        let receivers: Vec<NodeId> = (0..n).filter(|&j| j != i).map(|j| j as NodeId).collect();
        h.add_edge(i as NodeId, receivers).expect("complete edges are valid");
    }
    h
}

/// Fully connected topology realised with `n-1` unicast edges per node —
/// the classic point-to-point model (k = 1).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete_unicast(n: usize) -> Hypergraph {
    assert!(n >= 2, "complete topology needs at least two nodes");
    let mut h = Hypergraph::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                h.add_edge(i as NodeId, [j as NodeId]).expect("unicast edges are valid");
            }
        }
    }
    h
}

/// Star topology: every node exchanges unicasts with a `center` — the
/// trusted-baseline communication pattern (§5.1).
///
/// # Panics
///
/// Panics if `center` is out of range or `n < 2`.
pub fn star(n: usize, center: NodeId) -> Hypergraph {
    assert!(n >= 2, "star topology needs at least two nodes");
    assert!((center as usize) < n, "center must be a node");
    let mut h = Hypergraph::new(n);
    let spokes: Vec<NodeId> = (0..n as NodeId).filter(|&p| p != center).collect();
    h.add_edge(center, spokes.iter().copied()).expect("hub edge is valid");
    for p in spokes {
        h.add_edge(p, [center]).expect("spoke edges are valid");
    }
    h
}

/// Random k-cast topology: every node gets `d_out` outgoing k-casts to
/// uniformly chosen receiver sets. Used for property tests and robustness
/// experiments. The result is not guaranteed strongly connected — check
/// with [`Hypergraph::is_strongly_connected`] and resample if needed.
///
/// # Panics
///
/// Panics if `k == 0`, `k >= n`, or `d_out == 0`.
pub fn random_kcast<R: Rng>(n: usize, k: usize, d_out: usize, rng: &mut R) -> Hypergraph {
    assert!(k > 0 && k < n, "need 0 < k < n");
    assert!(d_out > 0, "need at least one out-edge per node");
    let mut h = Hypergraph::new(n);
    for i in 0..n as NodeId {
        let mut others: Vec<NodeId> = (0..n as NodeId).filter(|&j| j != i).collect();
        for _ in 0..d_out {
            others.shuffle(rng);
            h.add_edge(i, others[..k].iter().copied()).expect("sampled edges are valid");
        }
    }
    h.make_independent();
    h
}

/// Samples random k-cast topologies until one is strongly connected and
/// partition-resistant to `f` faults, up to `attempts` tries.
pub fn random_resilient_kcast<R: Rng>(
    n: usize,
    k: usize,
    d_out: usize,
    f: usize,
    attempts: usize,
    rng: &mut R,
) -> Option<Hypergraph> {
    for _ in 0..attempts {
        let h = random_kcast(n, k, d_out, rng);
        if h.is_strongly_connected() && h.is_partition_resistant(f) {
            return Some(h);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_kcast_shape_matches_paper() {
        let h = ring_kcast(10, 3);
        assert_eq!(h.n(), 10);
        assert_eq!(h.edges().len(), 10);
        assert_eq!(h.k(), Some(3));
        for p in 0..10 {
            assert_eq!(h.cap_d_out_of(p), 1, "D_out = 1");
            assert_eq!(h.cap_d_in_of(p), 3, "D_in = k");
            assert_eq!(h.d_out(p), 3);
            assert_eq!(h.d_in(p), 3);
        }
        assert!(h.is_independent());
    }

    #[test]
    fn ring_wraps_around() {
        let h = ring_kcast(5, 2);
        let e = h.out_edges(4).next().unwrap().1;
        let rs: Vec<_> = e.receivers().iter().copied().collect();
        assert_eq!(rs, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "k must leave")]
    fn ring_rejects_k_equal_n() {
        let _ = ring_kcast(4, 4);
    }

    #[test]
    fn complete_has_single_ncast_per_node() {
        let h = complete(6);
        assert_eq!(h.edges().len(), 6);
        assert_eq!(h.k(), Some(5));
        assert_eq!(h.diameter(), Some(1));
        assert!(h.is_partition_resistant(4));
    }

    #[test]
    fn complete_unicast_has_n_squared_edges() {
        let h = complete_unicast(4);
        assert_eq!(h.edges().len(), 12);
        assert_eq!(h.k(), Some(1));
        assert_eq!(h.diameter(), Some(1));
    }

    #[test]
    fn star_routes_through_center() {
        let h = star(5, 0);
        assert!(h.is_strongly_connected());
        // Removing the center partitions the spokes.
        assert!(!h.is_partition_resistant(1));
        let bad = h.find_partitioning_set(1).unwrap();
        assert_eq!(bad, vec![0]);
    }

    #[test]
    fn random_kcast_is_independent_and_valid() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = random_kcast(12, 3, 2, &mut rng);
        assert!(h.is_independent());
        assert_eq!(h.k(), Some(3));
        for e in h.edges() {
            assert!(!e.receivers().contains(&e.sender()));
        }
    }

    #[test]
    fn random_resilient_finds_connected_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = random_resilient_kcast(8, 3, 2, 1, 50, &mut rng)
            .expect("a resilient 8-node graph should exist");
        assert!(h.is_strongly_connected());
        assert!(h.is_partition_resistant(1));
    }
}
