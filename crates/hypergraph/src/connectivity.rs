//! Reachability, flooding distance, and fault-tolerance bounds
//! (paper Appendix A.2).

use std::collections::{BTreeSet, VecDeque};

use crate::graph::{Hypergraph, NodeId};

impl Hypergraph {
    /// Nodes reachable from `start` by flooding, ignoring nodes in
    /// `removed` (they neither relay nor count as reached).
    pub fn reachable_from(&self, start: NodeId, removed: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        if removed.contains(&start) {
            return seen;
        }
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(p) = queue.pop_front() {
            for (_, e) in self.out_edges(p) {
                for &r in e.receivers() {
                    if !removed.contains(&r) && seen.insert(r) {
                        queue.push_back(r);
                    }
                }
            }
        }
        seen
    }

    /// Hop distance from `start` to every node (flooding rounds needed),
    /// `None` for unreachable nodes. Index = node id.
    pub fn hop_distances(&self, start: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.n()];
        let mut queue = VecDeque::new();
        dist[start as usize] = Some(0);
        queue.push_back(start);
        while let Some(p) = queue.pop_front() {
            let d = dist[p as usize].expect("queued nodes have distances");
            for (_, e) in self.out_edges(p) {
                for &r in e.receivers() {
                    if dist[r as usize].is_none() {
                        dist[r as usize] = Some(d + 1);
                        queue.push_back(r);
                    }
                }
            }
        }
        dist
    }

    /// Whether every correct node can reach every other correct node after
    /// removing `removed` (strong connectivity of the residual graph).
    pub fn is_strongly_connected_without(&self, removed: &BTreeSet<NodeId>) -> bool {
        let alive: Vec<NodeId> = (0..self.n() as NodeId).filter(|p| !removed.contains(p)).collect();
        if alive.len() <= 1 {
            return true;
        }
        // Strong connectivity needs reachability from every alive node; with
        // flooding semantics it suffices that each alive node reaches all
        // alive nodes.
        alive.iter().all(|&p| {
            let r = self.reachable_from(p, removed);
            alive.iter().all(|q| r.contains(q))
        })
    }

    /// Whether the graph is strongly connected (no removals).
    pub fn is_strongly_connected(&self) -> bool {
        self.is_strongly_connected_without(&BTreeSet::new())
    }

    /// Flooding diameter in hops: the maximum finite hop distance between
    /// any ordered pair, or `None` if some pair is unreachable.
    ///
    /// The protocol's Δ parameter for a partially connected hypergraph is
    /// `diameter × per-hop bound` (Appendix A, "Network delay").
    pub fn diameter(&self) -> Option<usize> {
        let mut max = 0;
        for p in 0..self.n() as NodeId {
            for (q, d) in self.hop_distances(p).iter().enumerate() {
                match d {
                    Some(d) => max = max.max(*d),
                    None if q != p as usize => return None,
                    None => {}
                }
            }
        }
        Some(max)
    }

    /// The necessary fault bound of Lemma A.5: tolerating `f` faults
    /// requires `f < min_p min(d_out(p), d_in(p))`. Returns the largest `f`
    /// satisfying the necessary condition.
    pub fn necessary_fault_bound(&self) -> usize {
        let m = self.min_d_out().min(self.min_d_in());
        m.saturating_sub(1)
    }

    /// The k-cast form of the bound (Lemma A.6): `f < k · min(D_in, D_out)`.
    /// Returns the largest `f` satisfying it, or 0 for edge-less graphs.
    pub fn kcast_fault_bound(&self) -> usize {
        match self.k() {
            Some(k) => (k * self.cap_d_in().min(self.cap_d_out())).saturating_sub(1),
            None => 0,
        }
    }

    /// Exhaustively checks partition resistance: for every set of at most
    /// `f` removed nodes, the residual graph stays strongly connected.
    ///
    /// Work is `C(n, f)` residual-connectivity checks; intended for the
    /// paper-scale systems (n ≤ 20). Returns `false` early on the first
    /// partitioning set found.
    pub fn is_partition_resistant(&self, f: usize) -> bool {
        if f >= self.n() {
            return false;
        }
        let n = self.n() as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(f);
        self.partition_probe(0, n, f, &mut chosen)
    }

    fn partition_probe(&self, from: NodeId, n: NodeId, f: usize, chosen: &mut Vec<NodeId>) -> bool {
        // Check the current removal set (covers "at most f" by recursion).
        let removed: BTreeSet<NodeId> = chosen.iter().copied().collect();
        if !self.is_strongly_connected_without(&removed) {
            return false;
        }
        if chosen.len() == f {
            return true;
        }
        for p in from..n {
            chosen.push(p);
            let ok = self.partition_probe(p + 1, n, f, chosen);
            chosen.pop();
            if !ok {
                return false;
            }
        }
        true
    }

    /// Finds a minimal-size partitioning set if one of size at most `f`
    /// exists (useful for diagnostics in topology design).
    pub fn find_partitioning_set(&self, f: usize) -> Option<Vec<NodeId>> {
        for size in 0..=f.min(self.n().saturating_sub(1)) {
            let mut chosen = Vec::with_capacity(size);
            if let Some(bad) = self.find_partition_of_size(0, size, &mut chosen) {
                return Some(bad);
            }
        }
        None
    }

    fn find_partition_of_size(
        &self,
        from: NodeId,
        size: usize,
        chosen: &mut Vec<NodeId>,
    ) -> Option<Vec<NodeId>> {
        if chosen.len() == size {
            let removed: BTreeSet<NodeId> = chosen.iter().copied().collect();
            if !self.is_strongly_connected_without(&removed) {
                return Some(chosen.clone());
            }
            return None;
        }
        for p in from..self.n() as NodeId {
            chosen.push(p);
            if let Some(bad) = self.find_partition_of_size(p + 1, size, chosen) {
                return Some(bad);
            }
            chosen.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn ring_is_strongly_connected() {
        let h = topology::ring_kcast(7, 2);
        assert!(h.is_strongly_connected());
    }

    #[test]
    fn reachability_respects_removals() {
        // Line 0 -> 1 -> 2: removing 1 cuts 0 from 2.
        let mut h = Hypergraph::new(3);
        h.add_edge(0, [1]).unwrap();
        h.add_edge(1, [2]).unwrap();
        let none = BTreeSet::new();
        assert!(h.reachable_from(0, &none).contains(&2));
        let removed: BTreeSet<NodeId> = [1].into_iter().collect();
        assert!(!h.reachable_from(0, &removed).contains(&2));
        // Removed start reaches nothing.
        assert!(h.reachable_from(1, &removed).is_empty());
    }

    #[test]
    fn hop_distances_on_ring() {
        let h = topology::ring_kcast(6, 1); // simple directed cycle
        let d = h.hop_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4), Some(5)]);
        assert_eq!(h.diameter(), Some(5));
    }

    #[test]
    fn diameter_shrinks_with_k() {
        // ring_kcast(n, k) has diameter ceil((n-1)/k).
        assert_eq!(topology::ring_kcast(10, 1).diameter(), Some(9));
        assert_eq!(topology::ring_kcast(10, 3).diameter(), Some(3));
        assert_eq!(topology::ring_kcast(10, 9).diameter(), Some(1));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let mut h = Hypergraph::new(3);
        h.add_edge(0, [1]).unwrap();
        assert_eq!(h.diameter(), None);
    }

    #[test]
    fn fault_bounds_on_ring() {
        // ring_kcast(n, k): every node has d_in = d_out = k.
        let h = topology::ring_kcast(9, 3);
        assert_eq!(h.necessary_fault_bound(), 2);
        // One out k-cast, k in-casts: min(D_in, D_out) = 1, bound = k-1.
        assert_eq!(h.kcast_fault_bound(), 2);
    }

    #[test]
    fn lemma_a6_reduces_to_unicast_case() {
        // With k=1 the bound must match the classic directed-graph result
        // f < min(d_i, d_o).
        let h = topology::ring_kcast(8, 1);
        assert_eq!(h.kcast_fault_bound(), 0);
        assert_eq!(h.necessary_fault_bound(), 0);
    }

    #[test]
    fn partition_resistance_matches_bound_on_rings() {
        // ring k=2 over 7 nodes tolerates 1 removal but not 2 adjacent ones.
        let h = topology::ring_kcast(7, 2);
        assert!(h.is_partition_resistant(1));
        assert!(!h.is_partition_resistant(2));
        let bad = h.find_partitioning_set(2).expect("2 adjacent removals partition");
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn complete_graph_resists_up_to_n_minus_2() {
        let h = topology::complete(5);
        assert!(h.is_partition_resistant(3));
        assert!(!h.is_partition_resistant(5)); // f >= n is nonsense
    }

    #[test]
    fn find_partitioning_set_none_when_safe() {
        let h = topology::complete(4);
        assert_eq!(h.find_partitioning_set(2), None);
    }
}
