//! The hypergraph network model (paper Appendix A, Definition A.1).
//!
//! A hypergraph `H := (N, E)` has nodes `N = {p_1, …, p_n}` and hyper-edges
//! `E ⊆ N × 2^N`: each edge has one *sender* and a non-empty set of
//! *receivers*, modelling a wireless multicast ("k-cast") where one
//! transmission reaches several neighbours. Self-loops are excluded by
//! definition.

use std::collections::BTreeSet;
use std::fmt;

/// Node identifier. Nodes are numbered `0..n`.
pub type NodeId = u32;

/// Index of a hyper-edge inside its [`Hypergraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A directed hyper-edge: one sender, `k ≥ 1` receivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperEdge {
    sender: NodeId,
    receivers: BTreeSet<NodeId>,
}

impl HyperEdge {
    /// The sender `S(e)`.
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// The receiver set `R(e)`.
    pub fn receivers(&self) -> &BTreeSet<NodeId> {
        &self.receivers
    }

    /// The edge's multicast degree `k = |R(e)|`.
    pub fn k(&self) -> usize {
        self.receivers.len()
    }
}

/// Errors from hypergraph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    /// A node id ≥ n was referenced.
    NodeOutOfRange {
        /// The offending id.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// The edge's receiver set was empty.
    EmptyReceiverSet,
    /// The sender appeared in its own receiver set (`S(e) ∈ R(e)`).
    SelfLoop {
        /// The sender that would receive its own transmission.
        node: NodeId,
    },
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypergraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for a {n}-node hypergraph")
            }
            HypergraphError::EmptyReceiverSet => write!(f, "hyper-edge has no receivers"),
            HypergraphError::SelfLoop { node } => {
                write!(f, "node {node} cannot be a receiver of its own hyper-edge")
            }
        }
    }
}

impl std::error::Error for HypergraphError {}

/// A directed hypergraph with multicast (`k`-cast) edges.
///
/// # Examples
///
/// ```
/// use eesmr_hypergraph::Hypergraph;
///
/// // 4 nodes; node 0 multicasts to {1, 2}; node 1 to {2, 3}.
/// let mut h = Hypergraph::new(4);
/// h.add_edge(0, [1, 2]).unwrap();
/// h.add_edge(1, [2, 3]).unwrap();
/// assert_eq!(h.k(), Some(2));
/// assert_eq!(h.d_out(0), 2); // node 0 reaches 2 distinct nodes
/// assert_eq!(h.d_in(2), 2);  // node 2 hears from 2 distinct nodes
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<HyperEdge>,
}

impl Hypergraph {
    /// Creates an empty hypergraph over nodes `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "hypergraph needs at least one node");
        Hypergraph { n, edges: Vec::new() }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// All hyper-edges.
    pub fn edges(&self) -> &[HyperEdge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale/out of range.
    pub fn edge(&self, id: EdgeId) -> &HyperEdge {
        &self.edges[id.0]
    }

    /// Adds a hyper-edge from `sender` to `receivers`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range ids, an empty receiver set, or a
    /// self-loop.
    pub fn add_edge(
        &mut self,
        sender: NodeId,
        receivers: impl IntoIterator<Item = NodeId>,
    ) -> Result<EdgeId, HypergraphError> {
        if sender as usize >= self.n {
            return Err(HypergraphError::NodeOutOfRange { node: sender, n: self.n });
        }
        let receivers: BTreeSet<NodeId> = receivers.into_iter().collect();
        if receivers.is_empty() {
            return Err(HypergraphError::EmptyReceiverSet);
        }
        if receivers.contains(&sender) {
            return Err(HypergraphError::SelfLoop { node: sender });
        }
        if let Some(&bad) = receivers.iter().find(|&&r| r as usize >= self.n) {
            return Err(HypergraphError::NodeOutOfRange { node: bad, n: self.n });
        }
        self.edges.push(HyperEdge { sender, receivers });
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// Edges sent by `p` (the out-going k-cast links).
    pub fn out_edges(&self, p: NodeId) -> impl Iterator<Item = (EdgeId, &HyperEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.sender == p)
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// Edges in which `p` is a receiver (the incoming k-cast links).
    pub fn in_edges(&self, p: NodeId) -> impl Iterator<Item = (EdgeId, &HyperEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.receivers.contains(&p))
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// The graph's k-cast parameter: the minimum receiver-set size over all
    /// edges, or `None` if there are no edges.
    ///
    /// "We say our hypergraph H has k-casts if every edge contains at least
    /// k receivers."
    pub fn k(&self) -> Option<usize> {
        self.edges.iter().map(HyperEdge::k).min()
    }

    /// Out-degree `d_out(p)` (Definition A.4): the number of *distinct*
    /// nodes `p` can reach with its out-going edges.
    pub fn d_out(&self, p: NodeId) -> usize {
        let mut reached = BTreeSet::new();
        for (_, e) in self.out_edges(p) {
            reached.extend(e.receivers.iter().copied());
        }
        reached.len()
    }

    /// In-degree `d_in(p)` (Definition A.3): the number of *distinct* nodes
    /// from which `p` can receive.
    pub fn d_in(&self, p: NodeId) -> usize {
        let mut senders = BTreeSet::new();
        for (_, e) in self.in_edges(p) {
            senders.insert(e.sender);
        }
        senders.len()
    }

    /// Graph-level `d_out`: the minimum `d_out(p)` over all nodes.
    pub fn min_d_out(&self) -> usize {
        (0..self.n as NodeId).map(|p| self.d_out(p)).min().unwrap_or(0)
    }

    /// Graph-level `d_in`: the minimum `d_in(p)` over all nodes.
    pub fn min_d_in(&self) -> usize {
        (0..self.n as NodeId).map(|p| self.d_in(p)).min().unwrap_or(0)
    }

    /// `D_out(p)`: the number of out-going k-cast *links* of `p`.
    pub fn cap_d_out_of(&self, p: NodeId) -> usize {
        self.out_edges(p).count()
    }

    /// `D_in(p)`: the number of incoming k-cast *links* of `p`.
    pub fn cap_d_in_of(&self, p: NodeId) -> usize {
        self.in_edges(p).count()
    }

    /// Graph-level `D_out`: minimum number of out-going k-casts per node.
    pub fn cap_d_out(&self) -> usize {
        (0..self.n as NodeId).map(|p| self.cap_d_out_of(p)).min().unwrap_or(0)
    }

    /// Graph-level `D_in`: minimum number of incoming k-casts per node.
    pub fn cap_d_in(&self) -> usize {
        (0..self.n as NodeId).map(|p| self.cap_d_in_of(p)).min().unwrap_or(0)
    }

    /// Checks independence of edges (Definition A.2).
    ///
    /// A family of same-sender edges is *independent* iff no two distinct
    /// sub-families cover the same receiver union. That holds exactly when
    /// no edge's receiver set is contained in the union of its sibling
    /// edges' receiver sets (if `e ⊆ ∪ others` then `others` and
    /// `others ∪ {e}` are distinct sub-families with equal unions, and
    /// conversely any pair of equal-union families yields such an `e`).
    pub fn is_independent(&self) -> bool {
        for p in 0..self.n as NodeId {
            let out: Vec<&HyperEdge> = self.out_edges(p).map(|(_, e)| e).collect();
            for (i, e) in out.iter().enumerate() {
                let mut union_others = BTreeSet::new();
                for (j, o) in out.iter().enumerate() {
                    if i != j {
                        union_others.extend(o.receivers.iter().copied());
                    }
                }
                if e.receivers.is_subset(&union_others) {
                    return false;
                }
            }
        }
        true
    }

    /// Removes redundant edges until the edge family is independent
    /// (the paper's "modified spanning tree algorithm" note). Greedy:
    /// repeatedly drop an edge covered by the union of its siblings,
    /// preferring to drop smaller edges first so coverage is preserved.
    pub fn make_independent(&mut self) {
        loop {
            let mut drop_idx: Option<usize> = None;
            'outer: for p in 0..self.n as NodeId {
                let idxs: Vec<usize> = self
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.sender == p)
                    .map(|(i, _)| i)
                    .collect();
                // Visit smallest edges first so we drop the most redundant.
                let mut by_size = idxs.clone();
                by_size.sort_by_key(|&i| self.edges[i].k());
                for &i in &by_size {
                    let mut union_others = BTreeSet::new();
                    for &j in &idxs {
                        if i != j {
                            union_others.extend(self.edges[j].receivers.iter().copied());
                        }
                    }
                    if self.edges[i].receivers.is_subset(&union_others) {
                        drop_idx = Some(i);
                        break 'outer;
                    }
                }
            }
            match drop_idx {
                Some(i) => {
                    self.edges.remove(i);
                }
                None => break,
            }
        }
        debug_assert!(self.is_independent());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_validates_inputs() {
        let mut h = Hypergraph::new(3);
        assert_eq!(h.add_edge(3, [0]), Err(HypergraphError::NodeOutOfRange { node: 3, n: 3 }));
        assert_eq!(h.add_edge(0, []), Err(HypergraphError::EmptyReceiverSet));
        assert_eq!(h.add_edge(0, [0, 1]), Err(HypergraphError::SelfLoop { node: 0 }));
        assert_eq!(h.add_edge(0, [1, 9]), Err(HypergraphError::NodeOutOfRange { node: 9, n: 3 }));
        assert!(h.add_edge(0, [1, 2]).is_ok());
    }

    #[test]
    fn degrees_count_distinct_nodes_not_edges() {
        // Two overlapping edges from node 0: d_out counts distinct receivers.
        let mut h = Hypergraph::new(4);
        h.add_edge(0, [1, 2]).unwrap();
        h.add_edge(0, [2, 3]).unwrap();
        assert_eq!(h.d_out(0), 3);
        assert_eq!(h.cap_d_out_of(0), 2);
        assert_eq!(h.d_in(2), 1); // only node 0 sends to 2
        assert_eq!(h.cap_d_in_of(2), 2); // via two links
    }

    #[test]
    fn k_is_minimum_edge_degree() {
        let mut h = Hypergraph::new(5);
        assert_eq!(h.k(), None);
        h.add_edge(0, [1, 2, 3]).unwrap();
        h.add_edge(1, [2, 3]).unwrap();
        assert_eq!(h.k(), Some(2));
    }

    #[test]
    fn independence_detects_papers_example() {
        // Appendix A example: e1={p1,p2}, e2={p2,p3}, e3={p1,p3} from the
        // same sender — one edge is redundant.
        let mut h = Hypergraph::new(4);
        h.add_edge(0, [1, 2]).unwrap();
        h.add_edge(0, [2, 3]).unwrap();
        h.add_edge(0, [1, 3]).unwrap();
        assert!(!h.is_independent());
        h.make_independent();
        assert!(h.is_independent());
        // Coverage is preserved: node 0 still reaches all of {1,2,3}.
        assert_eq!(h.d_out(0), 3);
    }

    #[test]
    fn disjoint_edges_are_independent() {
        let mut h = Hypergraph::new(5);
        h.add_edge(0, [1, 2]).unwrap();
        h.add_edge(0, [3, 4]).unwrap();
        assert!(h.is_independent());
    }

    #[test]
    fn duplicate_edge_is_dependent() {
        let mut h = Hypergraph::new(3);
        h.add_edge(0, [1, 2]).unwrap();
        h.add_edge(0, [1, 2]).unwrap();
        assert!(!h.is_independent());
        h.make_independent();
        assert_eq!(h.edges().len(), 1);
    }

    #[test]
    fn in_out_edges_iterate_correctly() {
        let mut h = Hypergraph::new(4);
        let e0 = h.add_edge(0, [1, 2]).unwrap();
        let e1 = h.add_edge(1, [2]).unwrap();
        assert_eq!(h.out_edges(0).map(|(id, _)| id).collect::<Vec<_>>(), vec![e0]);
        assert_eq!(h.in_edges(2).map(|(id, _)| id).collect::<Vec<_>>(), vec![e0, e1]);
        assert_eq!(h.edge(e1).sender(), 1);
        assert_eq!(h.edge(e1).k(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_graph_panics() {
        let _ = Hypergraph::new(0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = HypergraphError::NodeOutOfRange { node: 7, n: 3 };
        assert!(e.to_string().contains('7'));
        assert!(HypergraphError::EmptyReceiverSet.to_string().contains("no receivers"));
        assert!(HypergraphError::SelfLoop { node: 1 }.to_string().contains("own"));
    }
}
