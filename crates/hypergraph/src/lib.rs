//! Hypergraph network model for multicast-capable CPS networks.
//!
//! Implements Appendix A of the paper: networks are modelled as directed
//! hypergraphs where a hyper-edge `(S(e), R(e))` is one wireless multicast
//! ("k-cast") from a sender to `k ≥ 1` receivers. The model generalises
//! point-to-point graphs (every edge has one receiver) and broadcast
//! domains (one edge reaching everyone).
//!
//! Provided here:
//!
//! * [`Hypergraph`] — edges, per-node degrees `d_in`/`d_out`
//!   (Definitions A.3/A.4), per-node link counts `D_in`/`D_out`, the k-cast
//!   parameter, and the independence-of-edges check (Definition A.2).
//! * Connectivity analysis — flooding reachability, hop distances, the
//!   flooding diameter used to derive Δ, fault bounds (Lemmas A.5/A.6) and
//!   exhaustive partition-resistance checking.
//! * [`topology`] — builders for the paper's ring k-cast testbed topology,
//!   complete (multicast and unicast) graphs, stars, and random k-cast
//!   graphs.
//!
//! # Example: the paper's testbed topology
//!
//! ```
//! use eesmr_hypergraph::topology::ring_kcast;
//!
//! // n = 10 nodes, k = 3: p_i k-casts to p_{i+1}, p_{i+2}, p_{i+3}.
//! let h = ring_kcast(10, 3);
//! assert_eq!(h.k(), Some(3));
//! assert!(h.is_strongly_connected());
//! // Lemma A.6 necessary bound: f < k · min(D_in, D_out) = 3.
//! assert_eq!(h.kcast_fault_bound(), 2);
//! // And it really resists 2 arbitrary removals:
//! assert!(h.is_partition_resistant(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connectivity;
mod graph;
pub mod topology;

pub use graph::{EdgeId, HyperEdge, Hypergraph, HypergraphError, NodeId};
