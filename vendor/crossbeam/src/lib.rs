//! Offline stand-in for the `crossbeam::channel` API surface this
//! workspace uses (`unbounded`, `Sender`, `Receiver`, `RecvTimeoutError`),
//! backed by `std::sync::mpsc`. The std channel provides the same
//! unbounded MPSC semantics the threaded transport needs; only
//! multi-consumer `select!` support would require the real crate, and
//! nothing here uses it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Unbounded MPSC channels with timeout-capable receive.

    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1u8).unwrap()).join().unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
