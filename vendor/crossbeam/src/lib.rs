//! Offline stand-in for the `crossbeam` API surface this workspace uses:
//!
//! * [`channel`] — unbounded **multi-producer multi-consumer** channels
//!   (`unbounded`, clonable `Sender` *and* `Receiver`, timeout-capable
//!   receive), mirroring `crossbeam-channel`. The real crate's lock-free
//!   queues are replaced by a `Mutex<VecDeque>` + `Condvar`, which keeps
//!   the exact same semantics (FIFO per producer, disconnection on last
//!   drop) at simulator-friendly throughput.
//! * [`thread`] — scoped threads (`thread::scope`, `Scope::spawn`)
//!   mirroring `crossbeam-utils`, backed by `std::thread::scope` so no
//!   unsafe code is needed.
//!
//! The threaded transport in `eesmr-net` uses the channels; the parallel
//! experiment driver in `eesmr-driver` uses both (a clonable `Receiver` is
//! the work queue its worker pool pulls scenarios from).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Unbounded MPMC channels with timeout-capable receive.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Creates a channel of unbounded capacity.
    ///
    /// Both halves are clonable: clone the [`Sender`] for multiple
    /// producers, clone the [`Receiver`] for multiple consumers (each
    /// message is delivered to exactly one consumer).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                // Wake every blocked receiver so it can observe the
                // disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel lock");
            }
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, wait) =
                    self.shared.ready.wait_timeout(inner, deadline - now).expect("channel lock");
                inner = guard;
                if wait.timed_out() && inner.queue.is_empty() {
                    return if inner.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// A blocking iterator over received messages; ends when every
        /// sender is gone and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().expect("channel lock").receivers -= 1;
        }
    }

    /// Blocking message iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// The channel is disconnected: every receiver was dropped. Returns
    /// the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is disconnected: every sender was dropped and the
    /// queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Why a [`Receiver::recv_timeout`] returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// Every sender was dropped and the queue is drained.
        Disconnected,
    }

    /// Why a [`Receiver::try_recv`] returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender was dropped and the queue is drained.
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1u8).unwrap()).join().unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn receivers_clone_and_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..4u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            // Each message is delivered to exactly one consumer.
            let mut got = Vec::new();
            let h = std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Ok(v) = rx2.recv() {
                    mine.push(v);
                }
                mine
            });
            while let Ok(v) = rx1.recv() {
                got.push(v);
            }
            got.extend(h.join().unwrap());
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn send_fails_once_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9u8), Err(SendError(9)));
        }

        #[test]
        fn try_recv_and_iter() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1u8).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`, backed by
    //! `std::thread::scope` (stable since Rust 1.63) so the stand-in
    //! stays `#![forbid(unsafe_code)]`.

    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as stdthread;

    /// The result of joining a (possibly panicked) thread.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle for spawning threads that may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; joining is optional (the scope joins
    /// any remaining threads on exit).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (`Err` if
        /// it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in the real crossbeam API, the
        /// closure receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope, runs `f` in it, and joins every spawned thread
    /// before returning. Returns `Err` if the body or an unjoined spawned
    /// thread panicked (the real crossbeam propagates body panics; the
    /// driver treats both as fatal, so collapsing them into `Err` is
    /// equivalent here).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| stdthread::scope(|s| f(&Scope { inner: s }))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_locals() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = scope(|s| {
                let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn nested_spawn_via_scope_arg() {
            let v = scope(|s| {
                let h = s.spawn(|s2| {
                    let inner = s2.spawn(|_| 21u32);
                    inner.join().unwrap() * 2
                });
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(v, 42);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
