//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;

use crate::Strategy;

/// Length bounds for collection strategies, mirroring
/// `proptest::collection::SizeRange`. Conversions from `usize` ranges guide
/// integer-literal inference at call sites (`vec(any::<u8>(), 0..128)`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

/// A `Vec` strategy with the given element strategy and length bounds.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, len: len.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let span = (self.len.hi - self.len.lo) as u64;
        let n = self.len.lo + (rand::RngCore::next_u64(rng) % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
