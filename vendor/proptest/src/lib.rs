//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! deterministic miniature of the proptest surface the test suites call:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`, `pat in
//! strategy` and `name: type` argument forms), range and `any::<T>()`
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   assertion message but is not minimised.
//! * **Deterministic streams.** Each test function derives its RNG seed
//!   from its own module path, so runs are reproducible and CI-stable.
//! * Strategies are plain generators (`Strategy::generate`), not lazy
//!   value trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;

/// Per-block execution configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rand::RngCore::next_u64(rng) as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128) - (start as i128) + 1;
                let off = (rand::RngCore::next_u64(rng) as u128 % span as u128) as i128;
                ((start as i128) + off) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rand::RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let unit = (rand::RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (unit - 0.5) * 2e9
    }
}

/// The `any::<T>()` strategy: an unconstrained value of `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns the canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything a `proptest!` caller needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };

    /// Namespace mirror of the real crate's `prelude::prop` re-export, so
    /// `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Derives the deterministic RNG for one generated test function.
#[doc(hidden)]
pub fn __test_rng(name: &str) -> StdRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0usize..10, flag: bool, v in prop::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::__test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng; $($args)*);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one argument list entry.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        ::std::assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        ::std::assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        ::std::assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        ::std::assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed binding forms all work and ranges stay in bounds.
        #[test]
        fn bindings_and_ranges(x in 3usize..9, y in 0u64..=5, flag: bool,
                               mut v in prop::collection::vec(any::<u8>(), 1..16)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 5);
            let _ = flag;
            v.push(0);
            prop_assert!(!v.is_empty() && v.len() <= 16);
        }
    }

    proptest! {
        /// The no-config form uses the default case count.
        #[test]
        fn default_config_runs(a in 0i64..10, b in 0i64..10) {
            prop_assert_eq!(a + b, b + a);
            if a != b {
                prop_assert_ne!(a, b, "guarded by the if");
            }
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = crate::__test_rng("x::y");
        let mut b = crate::__test_rng("x::y");
        assert_eq!(rand::RngCore::next_u64(&mut a), rand::RngCore::next_u64(&mut b));
    }
}
