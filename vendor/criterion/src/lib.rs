//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`Throughput`] and `sample_size`, the [`criterion_group!`] /
//! [`criterion_main!`] macros, and [`black_box`].
//!
//! Measurement is intentionally simple — a timed warm-up sizes the
//! iteration count to a small per-benchmark time budget, then one timed
//! batch reports mean wall-clock per iteration (plus throughput when
//! configured). There is no statistical analysis, HTML report, or saved
//! baseline; the numbers are indicative, which is all an environment
//! without the real crate can offer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work volume, used to report derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Minimum number of timed iterations per benchmark.
    sample_size: usize,
    /// Per-benchmark time budget used to size the iteration count.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, budget) = (self.sample_size, self.budget);
        run_one(&id.into(), None, sample_size, budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: self.sample_size,
            budget: self.budget,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    budget: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum timed iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration work volume for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, self.sample_size, self.budget, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    budget: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one iteration, timed, to size the real batch.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let fit = (budget.as_nanos() / per_iter.as_nanos()).min(1_000_000) as u64;
    let iters = fit.max(sample_size as u64);

    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;

    let mut line = format!("{id:<40} time: {} /iter ({iters} iters)", fmt_ns(mean_ns));
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Bytes(n) => format!("{} B/s", fmt_rate(n as f64, mean_ns)),
            Throughput::Elements(n) => format!("{} elem/s", fmt_rate(n as f64, mean_ns)),
        };
        line.push_str(&format!("  thrpt: {per_sec}"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_iter: f64, mean_ns: f64) -> String {
    let rate = per_iter * 1_000_000_000.0 / mean_ns;
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { sample_size: 3, budget: Duration::from_millis(1) };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls >= 3, "warm-up plus timed batch ran");
    }

    #[test]
    fn groups_apply_settings() {
        let mut c = Criterion { sample_size: 3, budget: Duration::from_millis(1) };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Bytes(64));
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
