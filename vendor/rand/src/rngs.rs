//! Named generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
///
/// Unlike the real `rand::rngs::StdRng` (which documents its stream as
/// unstable across releases), this stream is frozen: the simulator's
/// determinism guarantees depend on it never changing.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the 64-bit seed into the 256-bit state,
        // guaranteeing a non-zero state for any seed.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2018).
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
