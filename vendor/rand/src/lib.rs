//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no registry access, so the workspace
//! vendors a small, deterministic re-implementation instead of the real
//! crate: [`rngs::StdRng`] is xoshiro256++ seeded by SplitMix64, which is
//! reproducible across platforms and releases — a property the simulator's
//! determinism contract (`eesmr-net/src/runtime.rs`) relies on.
//!
//! Only the items the workspace actually calls are provided: [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`]. Uniform
//! range sampling uses modulo reduction; the bias is far below anything the
//! experiments or property tests can observe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] from the uniform ("standard")
/// distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a 64-bit seed, reproducibly.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
