//! Pins the §5.7 headline energy ratios to the paper's numbers within an
//! explicit tolerance band, so model changes that silently walk the
//! calibration away from the testbed fail loudly here.
//!
//! The bands are deliberately asymmetric in spirit: the paper measured
//! 2.85× (steady) and 2.05× (view change) on real ESP32 boards whose
//! radios pay a continuous scanning floor the simulator does not model
//! per-idle-millisecond. The simulator's per-message scan accounting
//! (see `ChannelCost::{dup_recv_mj, shared_recv_mj}`) lands ≈3.4× and
//! ≈2.0×; the README "Known deviations" table documents the residual
//! gap. A regression past the band (for example the ≈7.6× the model
//! produced before duplicate-scan and shared-window pricing) is a
//! calibration bug, not noise.

use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

/// Steady-state §5.7 scenario: n = 13, f = 6 silent followers, leader
/// correct — the Fig. 3 midpoint the prose quotes.
fn steady(protocol: Protocol) -> Scenario {
    let f = 6usize;
    let silent: Vec<u32> = (2u32..2 + f as u32).collect();
    Scenario::new(protocol, 13, f + 1)
        .fault_bound(f)
        .faults(FaultPlan::silent_nodes(silent))
        .stop(StopWhen::Blocks(15))
}

/// View-change scenario: the view-1 leader stays silent, node 1 takes
/// over after the blame quorum.
fn view_change(protocol: Protocol) -> Scenario {
    Scenario::new(protocol, 13, 7)
        .fault_bound(6)
        .faults(FaultPlan::silent_leader())
        .stop(StopWhen::ViewReached(2))
}

#[test]
fn steady_state_leader_ratio_tracks_paper_within_band() {
    const PAPER: f64 = 2.85;
    const TOLERANCE: f64 = 0.25; // ±25 %: scanning-floor gap, see module doc

    let eesmr = steady(Protocol::Eesmr).run().node_energy_per_block_mj(0);
    let synchs = steady(Protocol::SyncHotStuff).run().node_energy_per_block_mj(0);
    let ratio = synchs / eesmr;
    assert!(
        (ratio / PAPER - 1.0).abs() <= TOLERANCE,
        "steady-state SyncHS/EESMR leader ratio {ratio:.2}x strayed from the \
         paper's {PAPER}x by more than {:.0}%",
        TOLERANCE * 100.0
    );
}

#[test]
fn view_change_leader_ratio_tracks_paper_within_band() {
    const PAPER: f64 = 2.05;
    const TOLERANCE: f64 = 0.20;

    let eesmr = view_change(Protocol::Eesmr).with_paper_optimizations().run().node_energy_mj(1);
    let synchs = view_change(Protocol::SyncHotStuff).run().node_energy_mj(1);
    let ratio = eesmr / synchs;
    assert!(
        (ratio / PAPER - 1.0).abs() <= TOLERANCE,
        "view-change EESMR/SyncHS new-leader ratio {ratio:.2}x strayed from \
         the paper's {PAPER}x by more than {:.0}%",
        TOLERANCE * 100.0
    );
}

#[test]
fn abstract_savings_at_n10_stay_in_a_sane_envelope() {
    // The abstract's 64 % figure is the n = 10 BLE setting. Without the
    // testbed's idle-scanning floor the simulator overshoots (≈84 %), so
    // this pin only guards the envelope: EESMR must save well over half
    // the energy, and anything ≳95 % would mean Sync HotStuff costs are
    // being inflated rather than EESMR savings being real.
    let eesmr = Scenario::new(Protocol::Eesmr, 10, 5).stop(StopWhen::Blocks(15)).run();
    let synchs = Scenario::new(Protocol::SyncHotStuff, 10, 5).stop(StopWhen::Blocks(15)).run();
    let saving = 1.0 - eesmr.energy_per_block_mj() / synchs.energy_per_block_mj();
    assert!(
        (0.5..=0.95).contains(&saving),
        "n=10 steady-state saving {:.0}% left the [50%, 95%] envelope (paper: 64%)",
        saving * 100.0
    );
}
