//! Cross-crate integration tests: protocols × faults × topologies, plus
//! the repository-level claims (energy ordering, chain sync under loss).

use std::sync::Arc;

use eesmr_baselines::check_prefix_consistency;
use eesmr_core::{build_replicas, Config, FaultMode, Replica};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{Fate, NetConfig, SimDuration, SimNet};
use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

const PROTOCOLS: [Protocol; 3] = [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync];

#[test]
fn every_protocol_commits_in_honest_runs() {
    for proto in PROTOCOLS {
        let report = Scenario::new(proto, 6, 2).stop(StopWhen::Blocks(8)).run();
        assert!(
            report.committed_height() >= 8,
            "{} stuck at height {}",
            proto.name(),
            report.committed_height()
        );
        assert_eq!(report.view_changes(), 0, "{}", proto.name());
    }
    let tb = Scenario::new(Protocol::TrustedBaseline, 6, 2).stop(StopWhen::Blocks(8)).run();
    assert!(tb.committed_height() >= 8);
}

#[test]
fn every_bft_protocol_survives_a_silent_leader() {
    for proto in PROTOCOLS {
        let report = Scenario::new(proto, 6, 2)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::Blocks(3))
            .run();
        assert!(
            report.committed_height() >= 3,
            "{} did not recover: {}",
            proto.name(),
            report.summary()
        );
        assert!(report.view_changes() >= 1, "{}", proto.name());
    }
}

#[test]
fn every_bft_protocol_survives_an_equivocating_leader() {
    for proto in PROTOCOLS {
        let report = Scenario::new(proto, 6, 2)
            .faults(FaultPlan::equivocating_leader())
            .stop(StopWhen::Blocks(3))
            .run();
        assert!(
            report.committed_height() >= 3,
            "{} did not recover: {}",
            proto.name(),
            report.summary()
        );
    }
}

#[test]
fn energy_ordering_matches_the_paper() {
    // Steady state on identical settings: EESMR < SyncHS < OptSync.
    let e = Scenario::new(Protocol::Eesmr, 8, 3).stop(StopWhen::Blocks(10)).run();
    let s = Scenario::new(Protocol::SyncHotStuff, 8, 3).stop(StopWhen::Blocks(10)).run();
    let o = Scenario::new(Protocol::OptSync, 8, 3).stop(StopWhen::Blocks(10)).run();
    assert!(e.energy_per_block_mj() < s.energy_per_block_mj());
    assert!(s.energy_per_block_mj() < o.energy_per_block_mj());
}

#[test]
fn view_change_cost_inversion_matches_the_paper() {
    // The paper's trade-off: EESMR pays MORE than Sync HotStuff during a
    // view change (it converts votes-in-the-head into certificates).
    let e = Scenario::new(Protocol::Eesmr, 7, 3)
        .faults(FaultPlan::silent_leader())
        .stop(StopWhen::ViewReached(2))
        .run();
    let s = Scenario::new(Protocol::SyncHotStuff, 7, 3)
        .faults(FaultPlan::silent_leader())
        .stop(StopWhen::ViewReached(2))
        .run();
    assert!(
        e.node_energy_mj(1) > s.node_energy_mj(1),
        "EESMR VC {:.0} mJ should exceed SyncHS VC {:.0} mJ",
        e.node_energy_mj(1),
        s.node_energy_mj(1)
    );
}

#[test]
fn eesmr_steady_state_energy_independent_of_n_at_fixed_k() {
    // §5.6: "the energy cost of EESMR is independent of n in the best case
    // … the energy cost only depends on k" (per node).
    let per_node = |n: usize| {
        let r = Scenario::new(Protocol::Eesmr, n, 3).stop(StopWhen::Blocks(10)).run();
        r.node_energy_per_block_mj(2) // a replica
    };
    let small = per_node(6);
    let large = per_node(12);
    let ratio = large / small;
    assert!(
        (0.8..1.25).contains(&ratio),
        "per-node energy should not scale with n: {small:.1} vs {large:.1} mJ"
    );
}

#[test]
fn eesmr_replica_energy_grows_with_k_but_stays_subquadratic() {
    // Higher k buys higher redundancy (sends and first receptions cost
    // more), but the extra copies a denser graph delivers are mostly
    // duplicates, which a scanner abandons after one advertisement
    // (`ChannelCost::dup_recv_mj`) — so growth in k is real yet well
    // below proportional.
    let per_node = |k: usize| {
        let r = Scenario::new(Protocol::Eesmr, 10, k).stop(StopWhen::Blocks(10)).run();
        r.node_energy_per_block_mj(4)
    };
    let e2 = per_node(2);
    let e6 = per_node(6);
    assert!(e6 > e2 * 1.2, "k=6 ({e6:.0} mJ) should cost clearly above k=2 ({e2:.0} mJ)");
    assert!(e6 < e2 * 4.0, "growth should be roughly linear, not quadratic");
}

#[test]
fn chain_sync_repairs_a_lossy_node() {
    // Drop 60% of one node's incoming (non-flood) deliveries: it misses
    // proposals, detects the gaps via orphaned parents, and repairs them
    // through SyncRequest/SyncResponse.
    let n = 6;
    let topology = ring_kcast(n, 3);
    let net_cfg = NetConfig::ble(topology, 31);
    let config = Config::new(n, net_cfg.delta());
    let pki = Arc::new(KeyStore::generate(n, SigScheme::Rsa1024, 31));
    let replicas = build_replicas(&config, &pki, |_| FaultMode::Honest);
    let mut net: SimNet<Replica> = SimNet::new(net_cfg, replicas);

    let mut coin = 0u32;
    net.set_interceptor(Box::new(move |d| {
        if d.to == 4 && !d.is_flood {
            coin = coin.wrapping_mul(1664525).wrapping_add(1013904223);
            if coin % 10 < 6 {
                return Fate::Drop;
            }
        }
        Fate::Deliver
    }));
    net.run_for(SimDuration::from_millis(4_000));

    let healthy = net.actor(0).committed_height();
    let lossy = net.actor(4).committed_height();
    assert!(healthy >= 10, "healthy nodes progressed: {healthy}");
    assert!(
        lossy >= healthy / 2,
        "the lossy node kept up through chain sync: {lossy} vs {healthy}"
    );
    assert!(net.actor(4).metrics().sync_requests > 0, "chain sync was actually exercised");
    let logs: Vec<&[eesmr_crypto::Digest]> =
        (0..n as u32).map(|id| net.actor(id).committed()).collect();
    check_prefix_consistency(&logs).expect("safety under loss");
}

#[test]
fn seeds_change_schedules_but_not_safety() {
    for seed in [1u64, 7, 99, 12345] {
        let report = Scenario::new(Protocol::Eesmr, 6, 2)
            .seed(seed)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::Blocks(3))
            .run();
        assert!(report.committed_height() >= 3, "seed {seed}");
    }
}

#[test]
fn paper_optimizations_reduce_view_change_energy() {
    let plain = Scenario::new(Protocol::Eesmr, 9, 3)
        .faults(FaultPlan::silent_leader())
        .stop(StopWhen::ViewReached(2))
        .run();
    let optimized = Scenario::new(Protocol::Eesmr, 9, 3)
        .faults(FaultPlan::silent_leader())
        .with_paper_optimizations()
        .stop(StopWhen::ViewReached(2))
        .run();
    assert!(
        optimized.total_correct_energy_mj() < plain.total_correct_energy_mj(),
        "lock-only status should cut VC energy: {:.0} vs {:.0} mJ",
        optimized.total_correct_energy_mj(),
        plain.total_correct_energy_mj()
    );
}

#[test]
fn hmac_scheme_runs_but_loses_transferable_authentication() {
    // The protocol still runs with MACs (energy analysis §2), though real
    // deployments need signatures to prove equivocation.
    let report = Scenario::new(Protocol::Eesmr, 5, 2)
        .scheme(SigScheme::Hmac)
        .stop(StopWhen::Blocks(5))
        .run();
    assert!(report.committed_height() >= 5);
    assert!(!SigScheme::Hmac.transferable());
}

#[test]
fn eesmr_runs_on_real_threads() {
    // The same replica code that runs under the deterministic simulator
    // runs on one OS thread per node with wall-clock timers — the property
    // that would let it sit on a real BLE stack.
    use eesmr_net::{ChannelCost, ThreadNet, ThreadNetConfig};

    let n = 5;
    let topology = ring_kcast(n, 2);
    // Real-time Δ: generous 20 ms per hop bound × diameter 2.
    let config = Config::new(n, SimDuration::from_millis(40));
    let pki = Arc::new(KeyStore::generate(n, SigScheme::Rsa1024, 77));
    let replicas = build_replicas(&config, &pki, |_| FaultMode::Honest);
    let net = ThreadNet::spawn(
        ThreadNetConfig { topology, channel: ChannelCost::ble_four_nines(2) },
        replicas,
    );
    std::thread::sleep(std::time::Duration::from_millis(1_500));
    let nodes = net.shutdown();

    let heights: Vec<u64> = nodes.iter().map(|(r, _)| r.committed_height()).collect();
    assert!(
        heights.iter().all(|&h| h >= 2),
        "all threads commit under wall-clock timers: {heights:?}"
    );
    let logs: Vec<&[eesmr_crypto::Digest]> = nodes.iter().map(|(r, _)| r.committed()).collect();
    check_prefix_consistency(&logs).expect("threaded run stays safe");
    for (i, (_, meter)) in nodes.iter().enumerate() {
        assert!(meter.total_mj() > 0.0, "node {i} was metered");
    }
}
