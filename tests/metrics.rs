//! The observability determinism contract (`eesmr-metrics`): sampled
//! gauge series and the energy-attribution ledger are *measurements* of
//! a run, never inputs to it. Three consequences are pinned here:
//!
//! * Series and attribution matrices are bit-identical across shard
//!   counts, driver worker counts, and scheduler backends — they sample
//!   node-local state on node-local event streams, which the PR-5
//!   determinism contract already fixes.
//! * Turning sampling on (or profiling) changes no report field that
//!   participates in equality: observability is free of observer
//!   effects on the simulation itself.
//! * The attribution matrix is an exact decomposition: per node, class
//!   marginals reproduce the meter's category totals to well under a
//!   µJ, and the matrix total equals the meter total.

use eesmr_driver::{Driver, DriverConfig, ScenarioGrid};
use eesmr_energy::EnergyClass;
use eesmr_metrics::set_profiling;
use eesmr_net::{MetricsConfig, SchedulerKind};
use eesmr_sim::{ArrivalProcess, FaultPlan, Protocol, Scenario, Skew, StopWhen, Workload};

/// A dense sampling config: a 1 ms simulated cadence produces enough
/// boundary crossings that any shard- or scheduler-dependent sampling
/// would almost surely diverge somewhere.
fn dense() -> MetricsConfig {
    MetricsConfig { enabled: true, dt_us: 1_000, cap: 4_096 }
}

/// The hardest sampling workload: bursty skewed arrivals with a closed
/// loop, so in-flight counts, backlog, and energy rate all move.
fn busy_scenario(protocol: Protocol) -> Scenario {
    Scenario::new(protocol, 6, 3)
        .workload(
            Workload::new(ArrivalProcess::Bursty { rate: 5_000, on_ms: 30, off_ms: 60 })
                .skew(Skew::Hotspot { pct: 80 })
                .closed_loop(16),
        )
        .metrics(dense())
        .stop(StopWhen::Blocks(4))
}

#[test]
fn series_and_attribution_are_bit_identical_across_shards_and_schedulers() {
    for protocol in [Protocol::Eesmr, Protocol::SyncHotStuff] {
        let base = busy_scenario(protocol);
        let reference = base.clone().shards(1).run();
        assert!(!reference.metrics.is_empty(), "{}: dense sampling produced nothing", base.label());
        for shards in [2usize, 4] {
            let run = base.clone().shards(shards).run();
            assert_eq!(reference.metrics, run.metrics, "series diverged at {shards} shards");
            assert_eq!(
                reference.energy_attr, run.energy_attr,
                "attribution diverged at {shards} shards"
            );
        }
        let calendar = base.clone().scheduler(SchedulerKind::Calendar).run();
        assert_eq!(reference.metrics, calendar.metrics, "series diverged across schedulers");
        assert_eq!(
            reference.energy_attr, calendar.energy_attr,
            "attribution diverged across schedulers"
        );
    }
}

#[test]
fn series_and_attribution_are_bit_identical_across_driver_workers() {
    let grid = || {
        ScenarioGrid::named("metrics-determinism")
            .scenario("eesmr", busy_scenario(Protocol::Eesmr))
            .scenario("synchs", busy_scenario(Protocol::SyncHotStuff))
            .scenario(
                "vc-under-silent-leader",
                Scenario::new(Protocol::Eesmr, 5, 2)
                    .faults(FaultPlan::silent_leader())
                    .metrics(dense())
                    .stop(StopWhen::ViewReached(2)),
            )
    };
    let sequential = Driver::new(DriverConfig::default().workers(1)).run_grid(&grid());
    let parallel = Driver::new(DriverConfig::default().workers(8)).run_grid(&grid());
    assert_eq!(sequential, parallel);
    // Report equality deliberately excludes the observability surfaces,
    // so compare them explicitly, run by run.
    for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.metrics, y.metrics, "{}: series diverged across workers", a.label);
            assert_eq!(
                x.energy_attr, y.energy_attr,
                "{}: attribution diverged across workers",
                a.label
            );
        }
        assert!(!a.report().metrics.is_empty(), "{}: nothing sampled", a.label);
    }
}

#[test]
fn reports_are_equal_with_metrics_off_on_and_profiled() {
    for protocol in [Protocol::Eesmr, Protocol::TrustedBaseline] {
        let on = busy_scenario(protocol);
        let off = on.clone().metrics(MetricsConfig::off());
        let report_off = off.run();
        let report_on = on.clone().run();
        // Sampling perturbed nothing that participates in equality...
        assert_eq!(report_off, report_on, "metrics sampling changed the run");
        // ...while the on-run genuinely measured, and the off-run did not.
        assert!(!report_on.metrics.is_empty());
        assert!(report_off.metrics.is_empty());
        assert_eq!(report_on.trace_dropped.len(), report_on.nodes.len());
        // Wall-clock self-profiling is equally invisible to the report.
        set_profiling(true);
        let report_profiled = on.run();
        set_profiling(false);
        assert_eq!(report_on, report_profiled, "profiling changed the run");
    }
}

#[test]
fn attribution_class_marginals_reproduce_category_totals() {
    // Tolerance: the matrix and the category array receive the *same*
    // f64 increments, only summed in a different order, so they agree
    // far below the µJ (1e-3 mJ) the acceptance bar asks for.
    const TOL_MJ: f64 = 1e-6;
    for protocol in
        [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline]
    {
        let report = busy_scenario(protocol).run();
        assert_eq!(report.energy_attr.len(), report.nodes.len());
        for node in &report.nodes {
            let attr = &report.energy_attr[node.id as usize];
            let recv_classes: f64 = [
                EnergyClass::RecvScan,
                EnergyClass::RecvDecode,
                EnergyClass::SharedScan,
                EnergyClass::DupAbandoned,
            ]
            .into_iter()
            .map(|c| attr.class_mj(c))
            .sum();
            let checks = [
                ("send", attr.class_mj(EnergyClass::Send), node.energy.send_mj),
                ("recv", recv_classes, node.energy.recv_mj),
                ("sign", attr.class_mj(EnergyClass::Sign), node.energy.sign_mj),
                ("verify", attr.class_mj(EnergyClass::Verify), node.energy.verify_mj),
                ("hash", attr.class_mj(EnergyClass::Hash), node.energy.hash_mj),
                ("total", attr.total_mj(), node.energy.total_mj()),
            ];
            for (name, attributed, metered) in checks {
                assert!(
                    (attributed - metered).abs() < TOL_MJ,
                    "{protocol:?} node {}: {name} attribution {attributed} != meter {metered}",
                    node.id
                );
            }
            assert!(node.energy.total_mj() > 0.0, "{protocol:?} node {} drew no energy", node.id);
        }
    }
}
