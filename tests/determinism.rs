//! The simulator's determinism contract (`eesmr-net/src/runtime.rs`): a
//! scenario is a pure function of its configuration and seed. Two runs
//! with the same seed must produce *identical* `RunReport`s — every
//! energy figure, commit, view change, and network counter — across all
//! protocols, with and without faults.

use eesmr_sim::{FaultPlan, Protocol, RunReport, Scenario, StopWhen};

fn run(protocol: Protocol, seed: u64, faults: FaultPlan) -> RunReport {
    Scenario::new(protocol, 6, 3).seed(seed).faults(faults).stop(StopWhen::Blocks(4)).run()
}

#[test]
fn same_seed_same_report_for_every_protocol() {
    for protocol in
        [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline]
    {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = run(protocol, seed, FaultPlan::none());
            let b = run(protocol, seed, FaultPlan::none());
            assert_eq!(a, b, "{protocol:?} diverged with seed {seed}");
        }
    }
}

#[test]
fn same_seed_same_report_under_faults() {
    for faults in [FaultPlan::silent_leader(), FaultPlan::none().with_equivocator(1, 1)] {
        let a = run(Protocol::Eesmr, 7, faults.clone());
        let b = run(Protocol::Eesmr, 7, faults);
        assert_eq!(a, b, "faulty runs must still be deterministic");
    }
}

#[test]
fn seed_actually_matters_somewhere() {
    // Guard against the seed being ignored entirely: across a spread of
    // seeds, at least one pair of EESMR runs must differ in some respect
    // (delivery jitter makes timing-derived metrics seed-dependent).
    let reports: Vec<RunReport> =
        (0..8).map(|s| run(Protocol::Eesmr, s, FaultPlan::none())).collect();
    assert!(
        reports.windows(2).any(|w| w[0] != w[1]),
        "eight different seeds produced eight identical reports; is the seed wired through?"
    );
}
