//! The simulator's determinism contract (`eesmr-net/src/runtime.rs`): a
//! scenario is a pure function of its configuration and seed. Two runs
//! with the same seed must produce *identical* `RunReport`s — every
//! energy figure, commit, view change, and network counter — across all
//! protocols, with and without faults.

use eesmr_driver::{Driver, DriverConfig, ScenarioGrid};
use eesmr_net::SimDuration;
use eesmr_sim::{
    ArrivalProcess, FaultPlan, FaultSpec, Protocol, RunReport, Scenario, SchedulerKind, Skew,
    StopWhen, Workload,
};

/// The bursty, skewed, closed-loop workload the determinism grids use —
/// deliberately the hardest sampling path (MMPP state walks + per-node
/// RNG streams + in-flight feedback).
fn bursty_workload() -> Workload {
    Workload::new(ArrivalProcess::Bursty { rate: 5_000, on_ms: 30, off_ms: 60 })
        .skew(Skew::Hotspot { pct: 80 })
        .closed_loop(16)
}

fn run(protocol: Protocol, seed: u64, faults: FaultPlan) -> RunReport {
    Scenario::new(protocol, 6, 3).seed(seed).faults(faults).stop(StopWhen::Blocks(4)).run()
}

#[test]
fn same_seed_same_report_for_every_protocol() {
    for protocol in
        [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline]
    {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = run(protocol, seed, FaultPlan::none());
            let b = run(protocol, seed, FaultPlan::none());
            assert_eq!(a, b, "{protocol:?} diverged with seed {seed}");
        }
    }
}

#[test]
fn same_seed_same_report_under_faults() {
    for faults in [FaultPlan::silent_leader(), FaultPlan::none().with_equivocator(1, 1)] {
        let a = run(Protocol::Eesmr, 7, faults.clone());
        let b = run(Protocol::Eesmr, 7, faults);
        assert_eq!(a, b, "faulty runs must still be deterministic");
    }
}

/// A mixed grid: three protocols × two system sizes × two seeds, plus
/// explicit faulty scenarios (a stalled leader forcing a view change and
/// an equivocator).
fn mixed_grid() -> ScenarioGrid {
    ScenarioGrid::named("determinism")
        .protocols([Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync])
        .nodes([5, 6])
        .degrees([2])
        .seeds([7, 42])
        .stop(StopWhen::Blocks(3))
        .scenario(
            "vc-under-silent-leader",
            Scenario::new(Protocol::Eesmr, 5, 2)
                .faults(FaultPlan::silent_leader())
                .stop(StopWhen::ViewReached(2)),
        )
        .scenario(
            "equivocating-replica",
            Scenario::new(Protocol::Eesmr, 6, 2)
                .faults(FaultPlan::none().with_equivocator(1, 1))
                .stop(StopWhen::Blocks(3)),
        )
}

#[test]
fn parallel_driver_is_bit_identical_to_sequential() {
    // The driver extends the determinism contract across threads: a grid
    // fanned out over 8 workers must produce the same ordered suite —
    // every RunReport, energy figure, and summary statistic — as the
    // same grid run inline on 1 worker, twice (repeats included).
    let sequential =
        Driver::new(DriverConfig::default().workers(1).repeats(2)).run_grid(&mixed_grid());
    let parallel =
        Driver::new(DriverConfig::default().workers(8).repeats(2)).run_grid(&mixed_grid());
    assert_eq!(sequential.cells.len(), 14, "12 cartesian cells + 2 explicit scenarios");
    assert_eq!(sequential, parallel, "worker count leaked into the results");
    // And the parallel run is itself reproducible.
    let parallel_again =
        Driver::new(DriverConfig::default().workers(8).repeats(2)).run_grid(&mixed_grid());
    assert_eq!(parallel, parallel_again);
}

#[test]
fn driver_repeats_vary_the_seed_but_quick_mode_only_shrinks_targets() {
    let suite = Driver::new(DriverConfig::default().workers(4).repeats(3)).run_grid(
        &ScenarioGrid::named("repeats").nodes([6]).degrees([3]).stop(StopWhen::Blocks(3)),
    );
    let runs = &suite.cells[0].runs;
    assert_eq!(runs.len(), 3);
    assert!(
        runs.windows(2).any(|w| w[0] != w[1]),
        "repeats reseed the scenario, so some pair should differ"
    );
    // Repeat seeds stride into a disjoint range: with adjacent values on
    // the seed axis, cell(seed=1) repeat 1 must NOT replay cell(seed=2)
    // repeat 0 bit-for-bit.
    let adjacent = Driver::new(DriverConfig::default().workers(2).repeats(2)).run_grid(
        &ScenarioGrid::named("adjacent")
            .nodes([6])
            .degrees([3])
            .seeds([1, 2])
            .stop(StopWhen::Blocks(3)),
    );
    assert_ne!(
        adjacent.cells[0].runs[1], adjacent.cells[1].runs[0],
        "repeat reseeding collided with the next seed-axis value"
    );
    // Quick mode only clamps stop targets; with an already-small target
    // the run is unchanged.
    let full = Driver::new(DriverConfig::default().workers(2))
        .run_grid(&ScenarioGrid::named("quick").nodes([6]).degrees([3]).stop(StopWhen::Blocks(3)));
    let quick = Driver::new(DriverConfig::default().workers(2).quick(true))
        .run_grid(&ScenarioGrid::named("quick").nodes([6]).degrees([3]).stop(StopWhen::Blocks(3)));
    assert_eq!(full, quick);
}

/// A grid with a workload axis: every protocol under Poisson and bursty
/// client traffic, plus an explicit closed-loop diurnal scenario.
fn workload_grid() -> ScenarioGrid {
    ScenarioGrid::named("workload-determinism")
        .protocols([Protocol::Eesmr, Protocol::OptSync, Protocol::TrustedBaseline])
        .nodes([5])
        .degrees([2])
        .workloads([
            Workload::new(ArrivalProcess::Poisson { rate: 2_000 }).skew(Skew::Zipf),
            bursty_workload(),
        ])
        .stop(StopWhen::Blocks(3))
        .scenario(
            "diurnal-closed-loop",
            Scenario::new(Protocol::Eesmr, 6, 3)
                .workload(
                    Workload::new(ArrivalProcess::Diurnal {
                        base: 2_000,
                        amplitude: 1_500,
                        period_ms: 100,
                    })
                    .closed_loop(8),
                )
                .stop(StopWhen::Blocks(3)),
        )
}

#[test]
fn workload_grid_is_bit_identical_across_workers() {
    // The acceptance bar for the workload subsystem: a sweep over
    // (arrival × skew × protocol) — per-transaction latencies included —
    // is a pure function of the grid, not of the worker count.
    let sequential = Driver::new(DriverConfig::default().workers(1)).run_grid(&workload_grid());
    let parallel = Driver::new(DriverConfig::default().workers(8)).run_grid(&workload_grid());
    assert_eq!(sequential.cells.len(), 7, "3 protocols × 2 workloads + 1 explicit");
    assert_eq!(sequential, parallel, "worker count leaked into workload results");
    // The sweep actually measured per-transaction latency everywhere.
    for cell in &sequential.cells {
        let stats = cell.report().tx_latency_stats();
        assert!(stats.is_some(), "{} measured no transactions", cell.label);
        assert!(cell.stats.tx_latency_p50_us.is_some());
        assert!(cell.stats.tx_latency_p99_us.is_some());
    }
    // And the JSON/CSV payloads — what the figures consume — match too.
    assert_eq!(sequential.to_json(), parallel.to_json());
}

#[test]
fn workload_scenarios_are_bit_identical_across_schedulers() {
    // EESMR_SCHED must stay a pure performance choice with arrival
    // timers in the event stream: heap and calendar runs of a bursty,
    // skewed, closed-loop workload produce identical reports.
    let scenarios = [
        Scenario::new(Protocol::Eesmr, 6, 3).workload(bursty_workload()).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::SyncHotStuff, 6, 3)
            .workload(bursty_workload())
            .stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::TrustedBaseline, 5, 2)
            .workload(Workload::new(ArrivalProcess::Poisson { rate: 3_000 }))
            .stop(StopWhen::Blocks(4)),
    ];
    for scenario in scenarios {
        let heap = scenario.clone().scheduler(SchedulerKind::Heap).run();
        let calendar = scenario.clone().scheduler(SchedulerKind::Calendar).run();
        assert_eq!(heap, calendar, "scheduler leaked into results: {}", scenario.label());
        assert!(heap.tx_committed() > 0, "{} committed no transactions", scenario.label());
    }
}

#[test]
fn calendar_and_heap_schedulers_are_bit_identical() {
    // The event scheduler is a pure performance choice: swapping the
    // calendar queue for the reference binary heap must never change a
    // single byte of any report — across protocols, faults, and the
    // view-change path whose long timers exercise the spill heap.
    let scenarios = [
        Scenario::new(Protocol::Eesmr, 6, 3).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::SyncHotStuff, 6, 3).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::OptSync, 5, 2).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::TrustedBaseline, 6, 2).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::Eesmr, 5, 2)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::ViewReached(2)),
        Scenario::new(Protocol::Eesmr, 6, 2)
            .faults(FaultPlan::none().with_equivocator(1, 1))
            .stop(StopWhen::Blocks(3)),
    ];
    for scenario in scenarios {
        let heap = scenario.clone().scheduler(SchedulerKind::Heap).run();
        let calendar = scenario.clone().scheduler(SchedulerKind::Calendar).run();
        assert_eq!(heap, calendar, "scheduler leaked into results: {}", scenario.label());
    }
}

/// The mixed grid the sharded-equivalence test sweeps: every protocol,
/// a stalled-leader view change, an equivocator, and the bursty
/// closed-loop workload — all the event-stream shapes (floods, targeted
/// floods, timers, arrivals, forwarding) that could conceivably leak a
/// shard layout.
fn sharding_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(Protocol::Eesmr, 6, 3).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::SyncHotStuff, 6, 3).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::OptSync, 5, 2).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::TrustedBaseline, 6, 2).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::Eesmr, 5, 2)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::ViewReached(2)),
        Scenario::new(Protocol::Eesmr, 6, 2)
            .faults(FaultPlan::none().with_equivocator(1, 1))
            .stop(StopWhen::Blocks(3)),
        Scenario::new(Protocol::Eesmr, 6, 3).workload(bursty_workload()).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::SyncHotStuff, 6, 3)
            .workload(bursty_workload())
            .stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::Eesmr, 7, 3).stop(StopWhen::Elapsed(SimDuration::from_millis(40))),
    ]
}

#[test]
fn sharded_runs_are_bit_identical_for_any_shard_count() {
    // The parallel-simulation acceptance bar: splitting one scenario's
    // node set across 2 or 4 shard threads (EESMR_SHARDS) must not
    // change a single byte of the RunReport — energy floats included —
    // relative to the single-threaded run, across protocols, faults,
    // view changes, and workloads.
    for scenario in sharding_scenarios() {
        let reference = scenario.clone().shards(1).run();
        for shards in [2, 4] {
            let sharded = scenario.clone().shards(shards).run();
            assert_eq!(
                reference,
                sharded,
                "shard count {shards} leaked into results: {}",
                scenario.label()
            );
        }
    }
}

#[test]
fn sharded_runs_are_bit_identical_under_both_schedulers() {
    // Sharding × scheduler: all four combinations of (heap|calendar) ×
    // (1|3 shards) must coincide — each shard's local queue goes through
    // the selected backend, so this pins the full cross product.
    let scenarios = [
        Scenario::new(Protocol::Eesmr, 6, 3).workload(bursty_workload()).stop(StopWhen::Blocks(4)),
        Scenario::new(Protocol::Eesmr, 5, 2)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::ViewReached(2)),
        Scenario::new(Protocol::OptSync, 6, 2).stop(StopWhen::Blocks(4)),
    ];
    for scenario in scenarios {
        let reference = scenario.clone().scheduler(SchedulerKind::Heap).shards(1).run();
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            for shards in [1, 3] {
                let run = scenario.clone().scheduler(kind).shards(shards).run();
                assert_eq!(
                    reference,
                    run,
                    "({}, {shards} shards) diverged: {}",
                    kind.name(),
                    scenario.label()
                );
            }
        }
    }
}

#[test]
fn shard_axis_suites_agree_cell_for_cell() {
    // A grid sweeping the shard axis produces one cell per shard count;
    // all of them must carry identical RunReports (the shard count is a
    // performance axis, not a results axis), and the suite JSON must
    // record the axis so sweeps are auditable.
    let grid = ScenarioGrid::named("shard-axis")
        .nodes([6])
        .degrees([3])
        .shards([1, 2, 4])
        .stop(StopWhen::Blocks(3));
    let suite = Driver::new(DriverConfig::default().workers(2)).run_grid(&grid);
    assert_eq!(suite.cells.len(), 3);
    for cell in &suite.cells[1..] {
        assert_eq!(suite.cells[0].runs, cell.runs, "cell {} diverged", cell.label);
    }
    assert_eq!(suite.cells[0].key.shards, 1);
    assert_eq!(suite.cells[2].key.shards, 4);
    assert!(suite.to_json().contains("\"shards\": 4"), "suite JSON records the shard axis");
}

#[test]
fn seed_actually_matters_somewhere() {
    // Guard against the seed being ignored entirely: across a spread of
    // seeds, at least one pair of EESMR runs must differ in some respect
    // (delivery jitter makes timing-derived metrics seed-dependent).
    let reports: Vec<RunReport> =
        (0..8).map(|s| run(Protocol::Eesmr, s, FaultPlan::none())).collect();
    assert!(
        reports.windows(2).any(|w| w[0] != w[1]),
        "eight different seeds produced eight identical reports; is the seed wired through?"
    );
}

#[test]
fn traces_are_bit_identical_across_shards() {
    // The trace extends the determinism contract: events are stamped
    // (time, node, node-local seq) from node-local state only, so the
    // shard count — which reorders *execution* but not virtual time —
    // cannot move, drop, or reorder a single event.
    use eesmr_net::TraceLevel;
    let base = Scenario::new(Protocol::Eesmr, 6, 3)
        .workload(bursty_workload())
        .stop(StopWhen::Blocks(4))
        .trace(TraceLevel::All);
    let (reference_report, reference_trace) = base.clone().shards(1).run_traced();
    assert!(reference_trace.total_events() > 0, "tracing recorded something");
    for shards in [2usize, 4] {
        let (report, trace) = base.clone().shards(shards).run_traced();
        assert_eq!(reference_trace, trace, "trace diverged with {shards} shards");
        assert_eq!(reference_report, report, "report diverged with {shards} shards");
    }
    // Same contract for the scheduler knob.
    let (_, calendar) = base.clone().scheduler(SchedulerKind::Calendar).run_traced();
    let (_, heap) = base.clone().scheduler(SchedulerKind::Heap).run_traced();
    assert_eq!(calendar, heap, "trace diverged across schedulers");
}

#[test]
fn traces_are_bit_identical_across_workers() {
    // Fanning traced scenarios over the driver's worker pool must yield
    // the same traces as running them inline.
    use eesmr_net::TraceLevel;
    use eesmr_trace::TraceSet;
    let scenarios: Vec<Scenario> = [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync]
        .into_iter()
        .map(|p| {
            Scenario::new(p, 5, 2)
                .workload(bursty_workload())
                .stop(StopWhen::Blocks(3))
                .trace(TraceLevel::All)
        })
        .collect();
    let traced = |workers: usize| -> Vec<TraceSet> {
        Driver::new(DriverConfig::default().workers(workers)).map(&scenarios, |s| s.run_traced().1)
    };
    let inline = traced(1);
    assert!(inline.iter().all(|t| t.total_events() > 0));
    assert_eq!(inline, traced(8), "worker count leaked into the traces");
}

/// Adversarial scenarios for the sharded-equivalence sweep: every fault
/// behaviour with a wall-clock schedule (healing partition, node churn,
/// crash-recovery) plus vote withholding — the paths where restart
/// timers, link-fault checks at transmit time, and repair floods could
/// conceivably leak a shard layout, worker count, or scheduler choice.
fn adversarial_scenarios() -> Vec<Scenario> {
    let mut scenarios: Vec<Scenario> =
        [FaultSpec::PartitionHeal, FaultSpec::Churn, FaultSpec::Withhold]
            .into_iter()
            .flat_map(|spec| {
                [Protocol::Eesmr, Protocol::SyncHotStuff].into_iter().map(move |protocol| {
                    Scenario::new(protocol, 6, 3).fault_spec(spec).stop(StopWhen::Blocks(4))
                })
            })
            .collect();
    scenarios.push(
        Scenario::new(Protocol::TrustedBaseline, 6, 2)
            .fault_spec(FaultSpec::CrashRecovery)
            .stop(StopWhen::Blocks(4)),
    );
    // The compound plan: partition-heal + churn + withholding at once.
    scenarios.push(
        Scenario::new(Protocol::Eesmr, 6, 3)
            .faults(
                FaultPlan::none()
                    .with_withholder(5, 1)
                    .with_partition(5_000, 40_000, [4])
                    .with_crash(3, 10_000, Some(60_000)),
            )
            .stop(StopWhen::Blocks(4)),
    );
    scenarios
}

#[test]
fn adversarial_runs_are_bit_identical_across_shards_and_schedulers() {
    // The fault model extends the determinism contract: restart timers,
    // partition/drop checks, and repair replies are all keyed to
    // node-local state and virtual time, so the shard count and the
    // scheduler backend must not move a single byte of the report — or a
    // single event of the commit trace. Every traced run must also
    // replay safety-clean through the auditor.
    use eesmr_net::TraceLevel;
    use eesmr_trace::audit::{audit, AuditConfig};
    for scenario in adversarial_scenarios() {
        let base = scenario.trace(TraceLevel::Commit).scheduler(SchedulerKind::Heap);
        let (reference_report, reference_trace) = base.clone().shards(1).run_traced();
        assert!(reference_trace.total_events() > 0, "tracing recorded something");
        let verdict = audit(&reference_trace, &AuditConfig::safety_only());
        assert!(verdict.is_clean(), "{}: {:?}", base.label(), verdict.violations);
        for shards in [2usize, 4] {
            let (report, trace) = base.clone().shards(shards).run_traced();
            assert_eq!(reference_report, report, "{shards} shards leaked: {}", base.label());
            assert_eq!(reference_trace, trace, "trace diverged at {shards} shards");
        }
        let (report, trace) = base.clone().scheduler(SchedulerKind::Calendar).run_traced();
        assert_eq!(reference_report, report, "calendar scheduler leaked: {}", base.label());
        assert_eq!(reference_trace, trace, "trace diverged under the calendar scheduler");
    }
}

#[test]
fn adversarial_runs_are_bit_identical_across_workers() {
    // Same scenarios through the driver pool: 1 worker ≡ 8 workers,
    // reports and traces both.
    use eesmr_net::TraceLevel;
    let scenarios: Vec<Scenario> =
        adversarial_scenarios().into_iter().map(|s| s.trace(TraceLevel::Commit)).collect();
    let run_all = |workers: usize| {
        Driver::new(DriverConfig::default().workers(workers)).map(&scenarios, |s| s.run_traced())
    };
    let inline = run_all(1);
    let parallel = run_all(8);
    for (scenario, ((report_a, trace_a), (report_b, trace_b))) in
        scenarios.iter().zip(inline.iter().zip(&parallel))
    {
        assert_eq!(report_a, report_b, "worker count leaked: {}", scenario.label());
        assert_eq!(trace_a, trace_b, "trace diverged across workers: {}", scenario.label());
    }
}

#[test]
fn tracing_cannot_perturb_results() {
    // Every level from off to all must produce the same RunReport for
    // every protocol: tracing is pure observation.
    use eesmr_net::TraceLevel;
    for protocol in
        [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline]
    {
        let base =
            Scenario::new(protocol, 5, 2).workload(bursty_workload()).stop(StopWhen::Blocks(3));
        let off = base.clone().trace(TraceLevel::Off).run();
        for level in [TraceLevel::Commit, TraceLevel::Proto, TraceLevel::All] {
            let traced = base.clone().trace(level).run();
            assert_eq!(off, traced, "{protocol:?} diverged at {}", level.name());
        }
    }
}
