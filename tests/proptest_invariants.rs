//! Property-based tests over the repository's core invariants.

use eesmr_core::{set_deep_clone_spine, Block, BlockStore, Command, Lineage};
use eesmr_crypto::{Digest, KeyStore, SigScheme};
use eesmr_energy::psi::break_even_nu;
use eesmr_energy::{BleKcastModel, Medium};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_sim::{ArrivalProcess, FaultPlan, Protocol, Scenario, Skew, StopWhen, Workload};
use eesmr_trace::audit::{audit, AuditConfig};
use eesmr_trace::TraceLevel;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Chain store invariants.
// ---------------------------------------------------------------------

/// Builds a chain of `len` blocks plus an optional fork at `fork_at`.
fn build_chain(len: usize, fork_at: Option<usize>) -> (BlockStore, Vec<Digest>, Option<Digest>) {
    let mut store = BlockStore::new();
    let mut ids = vec![store.genesis_id()];
    for i in 0..len {
        let parent = store.get(ids.last().unwrap()).unwrap().clone();
        let b = Block::extending(&parent, 1, 3 + i as u64, vec![Command::synthetic(i as u64, 8)]);
        ids.push(store.insert(b));
    }
    let fork = fork_at.and_then(|at| {
        if at >= ids.len() {
            return None;
        }
        let base = store.get(&ids[at]).unwrap().clone();
        let b = Block::extending(&base, 9, 99, vec![Command::synthetic(u64::MAX, 8)]);
        Some(store.insert(b))
    });
    (store, ids, fork)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extends_is_transitive_along_chains(len in 2usize..20, a in 0usize..20, b in 0usize..20, c in 0usize..20) {
        let (store, ids, _) = build_chain(len, None);
        let (a, b, c) = (a % ids.len(), b % ids.len(), c % ids.len());
        if store.extends(&ids[a], &ids[b]) && store.extends(&ids[b], &ids[c]) {
            prop_assert!(store.extends(&ids[a], &ids[c]));
        }
    }

    #[test]
    fn chain_order_matches_height_order(len in 1usize..20, x in 0usize..20, y in 0usize..20) {
        let (store, ids, _) = build_chain(len, None);
        let (x, y) = (x % ids.len(), y % ids.len());
        prop_assert_eq!(store.extends(&ids[x], &ids[y]), x >= y);
    }

    #[test]
    fn forks_are_detected(len in 2usize..15, at in 0usize..13) {
        let (store, ids, fork) = build_chain(len, Some(at % len));
        if let Some(fork) = fork {
            let tip = *ids.last().unwrap();
            if fork != tip {
                prop_assert_eq!(store.lineage(&fork, &tip), Lineage::Fork);
            }
        }
    }

    #[test]
    fn segment_reconstructs_the_chain(len in 1usize..20, from in 0usize..20, to in 0usize..20) {
        let (store, ids, _) = build_chain(len, None);
        let (from, to) = (from % ids.len(), to % ids.len());
        let seg = store.segment(&ids[from], &ids[to]);
        if from <= to {
            let seg = seg.expect("forward segments exist");
            prop_assert_eq!(seg.len(), to - from);
            prop_assert_eq!(seg.as_slice(), &ids[from + 1..=to]);
        } else {
            prop_assert!(seg.is_none());
        }
    }
}

// ---------------------------------------------------------------------
// Crypto invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn signatures_never_cross_verify(msg1 in prop::collection::vec(any::<u8>(), 0..64),
                                     msg2 in prop::collection::vec(any::<u8>(), 0..64),
                                     signer in 0u32..4, other in 0u32..4) {
        let pki = KeyStore::generate(4, SigScheme::Rsa1024, 5);
        let sig = pki.keypair(signer).sign(&msg1);
        prop_assert!(pki.verify(&msg1, &sig));
        if msg1 != msg2 {
            prop_assert!(!pki.verify(&msg2, &sig));
        }
        if signer != other {
            prop_assert!(!sig.verify(&msg1, pki.public_key(other).unwrap()));
        }
    }

    #[test]
    fn digests_are_deterministic_and_injective_in_practice(
        a in prop::collection::vec(any::<u8>(), 0..128),
        b in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assert_eq!(Digest::of(&a), Digest::of(&a));
        if a != b {
            prop_assert_ne!(Digest::of(&a), Digest::of(&b));
        }
    }
}

// ---------------------------------------------------------------------
// Hypergraph invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_kcast_structure(n in 3usize..20, k_raw in 1usize..19) {
        let k = 1 + k_raw % (n - 1);
        let h = ring_kcast(n, k);
        prop_assert_eq!(h.k(), Some(k));
        prop_assert!(h.is_strongly_connected());
        prop_assert!(h.is_independent());
        prop_assert_eq!(h.diameter(), Some((n - 1).div_ceil(k)));
        prop_assert_eq!(h.kcast_fault_bound(), k - 1);
        for p in 0..n as u32 {
            prop_assert_eq!(h.d_in(p), k);
            prop_assert_eq!(h.d_out(p), k);
        }
    }

    #[test]
    fn partition_resistance_never_exceeds_the_necessary_bound(n in 4usize..10, k_raw in 1usize..9) {
        let k = 1 + k_raw % (n - 1);
        let h = ring_kcast(n, k);
        let necessary = h.necessary_fault_bound();
        // Sufficiency can be weaker, never stronger, than Lemma A.5 — as
        // long as at least two correct nodes remain to be partitioned
        // (removing n-1 nodes leaves connectivity vacuous).
        if necessary < n - 2 && h.is_partition_resistant(necessary + 1) {
            prop_assert!(false, "resisted more faults than the necessary bound allows");
        }
    }
}

// ---------------------------------------------------------------------
// Energy model invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn media_costs_are_monotone(bytes in 1usize..4096, extra in 1usize..1024) {
        for m in Medium::ALL {
            prop_assert!(m.send_mj(bytes + extra) >= m.send_mj(bytes));
            prop_assert!(m.recv_mj(bytes + extra) >= m.recv_mj(bytes));
        }
    }

    #[test]
    fn kcast_failure_monotone(k in 1usize..10, r in 1u32..9) {
        let model = BleKcastModel::default();
        // More receivers -> more ways to fail; more redundancy -> fewer.
        prop_assert!(model.fragment_failure_prob(k + 1, r) >= model.fragment_failure_prob(k, r));
        prop_assert!(model.fragment_failure_prob(k, r + 1) <= model.fragment_failure_prob(k, r));
        let p = model.fragment_failure_prob(k, r);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn redundancy_for_meets_its_target(k in 1usize..10, nines in 1u32..6) {
        let model = BleKcastModel::default();
        let target = 1.0 - 0.1f64.powi(nines as i32);
        let r = model.redundancy_for(k, target);
        prop_assert!(model.fragment_failure_prob(k, r) <= 1.0 - target + 1e-12);
        if r > 1 {
            prop_assert!(model.fragment_failure_prob(k, r - 1) > 1.0 - target);
        }
    }

    #[test]
    fn break_even_nu_is_a_valid_fraction(a in 0.0f64..1e6, b in 0.0f64..1e6,
                                         c in 0.0f64..1e6, d in 0.0f64..1e6) {
        if let Some(nu) = break_even_nu(a, b, c, d) {
            prop_assert!((0.0..=1.0).contains(&nu));
        }
    }
}

// ---------------------------------------------------------------------
// Whole-protocol properties (fewer cases — each runs a simulation).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn eesmr_is_deterministic_per_seed(seed in 0u64..1000) {
        let run = || {
            Scenario::new(Protocol::Eesmr, 5, 2)
                .seed(seed)
                .stop(StopWhen::Blocks(4))
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.total_correct_energy_mj(), b.total_correct_energy_mj());
        prop_assert_eq!(a.committed_height(), b.committed_height());
        prop_assert_eq!(a.net, b.net);
    }

    /// The Arc-backed `Commands` spine is a pure allocation optimization:
    /// across a protocol × fault × workload grid, a run under the restored
    /// deep-clone (pre-change) semantics produces a `RunReport` equal
    /// field-for-field — and byte-for-byte in its serialized `Debug` form —
    /// to the Arc-spine run. (The flag only changes what `Commands::clone`
    /// allocates, so cases within this test run it serially without
    /// perturbing any concurrently-running test's behavior.)
    #[test]
    fn arc_spine_reports_match_deep_clone_semantics(
        seed in 0u64..500,
        proto_ix in 0usize..3,
        fault_ix in 0usize..3,
        workload_ix in 0usize..3,
    ) {
        let protocol = [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync][proto_ix];
        let build = || {
            let s = Scenario::new(protocol, 7, 2).seed(seed).stop(StopWhen::Blocks(3));
            let s = match fault_ix {
                0 => s,
                1 => s.faults(FaultPlan::silent_leader()),
                _ => s.faults(FaultPlan::none().with_equivocator(1, 1)),
            };
            match workload_ix {
                0 => s,
                1 => s.workload(Workload::new(ArrivalProcess::Poisson { rate: 2_000 })),
                _ => s.workload(
                    Workload::new(ArrivalProcess::Constant { rate: 1_500 })
                        .skew(Skew::Zipf)
                        .closed_loop(4),
                ),
            }
        };
        set_deep_clone_spine(true);
        let deep = build().run();
        set_deep_clone_spine(false);
        let arc = build().run();
        prop_assert_eq!(&deep, &arc, "spine mode changed observable behavior");
        prop_assert_eq!(format!("{deep:?}"), format!("{arc:?}"));
    }

    #[test]
    fn eesmr_survives_random_single_faults(seed in 0u64..1000, faulty in 0u32..5, equivocate: bool) {
        let plan = if equivocate {
            FaultPlan::none().with_equivocator(faulty, 1)
        } else {
            FaultPlan::none().with_silent(faulty, 1)
        };
        let report = Scenario::new(Protocol::Eesmr, 5, 2)
            .seed(seed)
            .faults(plan)
            .stop(StopWhen::Blocks(2))
            .run();
        prop_assert!(report.committed_height() >= 2, "stuck: {}", report.summary());
    }
}

// ---------------------------------------------------------------------
// Trace-audited adversarial properties (fewer cases — each case runs a
// whole simulation and replays its merged trace through the auditor).
// ---------------------------------------------------------------------

const AUDITED_PROTOCOLS: [Protocol; 4] =
    [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under any node-fault mix that respects the tolerance threshold
    /// (at most 2 faulty of n = 7 at k = 3), every protocol's traced run
    /// must audit safety-clean: no two nodes commit different blocks at
    /// the same height, and no node's committed height ever rewinds.
    #[test]
    fn random_fault_plans_audit_safety_clean(
        seed in 0u64..1000,
        proto_ix in 0usize..4,
        behaviors in prop::collection::vec(0usize..5, 1..3),
        restart_scale in 2u64..8,
    ) {
        let protocol = AUDITED_PROTOCOLS[proto_ix];
        // Afflict trailing nodes (6, then 5) so the view-1 leader stays
        // honest and the faulty count stays inside every threshold.
        let mut plan = FaultPlan::none();
        for (i, b) in behaviors.iter().enumerate() {
            let node = (6 - i) as u32;
            plan = match b {
                0 => plan.with_silent(node, 1),
                1 => plan.with_withholder(node, 1),
                2 => plan.with_storm(node, 1, 2),
                3 => plan.with_crash(node, 5_000, Some(5_000 * restart_scale)),
                _ => plan.with_crash(node, 5_000, None),
            };
        }
        let (report, traces) = Scenario::new(protocol, 7, 3)
            .seed(seed)
            .faults(plan)
            .stop(StopWhen::Blocks(3))
            .trace(TraceLevel::Commit)
            .run_traced();
        let verdict = audit(&traces, &AuditConfig::safety_only());
        prop_assert!(verdict.is_clean(), "{}: {:?}", report.summary(), verdict.violations);
        prop_assert!(verdict.commits > 0, "nobody committed: {}", report.summary());
    }

    /// Random link-level schedules — a healing partition plus a lossy
    /// egress window on the islanded node — never threaten safety on any
    /// protocol: the runtime drops or delays messages, it never forges
    /// them, so committed logs still agree.
    #[test]
    fn random_link_schedules_audit_safety_clean(
        seed in 0u64..1000,
        proto_ix in 0usize..4,
        island in 1u32..7,
        start_ms in 0u64..30,
        len_ms in 1u64..40,
        permille in 0u16..1001,
    ) {
        let protocol = AUDITED_PROTOCOLS[proto_ix];
        let start_us = start_ms * 1_000;
        let plan = FaultPlan::none()
            .with_partition(start_us, start_us + len_ms * 1_000, [island])
            .with_drop(island, None, permille, 0, start_us);
        let (report, traces) = Scenario::new(protocol, 7, 3)
            .seed(seed)
            .faults(plan)
            .stop(StopWhen::Blocks(3))
            .trace(TraceLevel::Commit)
            .run_traced();
        let verdict = audit(&traces, &AuditConfig::safety_only());
        prop_assert!(verdict.is_clean(), "{}: {:?}", report.summary(), verdict.violations);
        prop_assert!(verdict.commits > 0, "nobody committed: {}", report.summary());
    }
}
